// `fpdt tune --sweep chunk`: the Fig. 12 chunk-size tradeoff curve (MFU and
// HBM versus global chunk tokens at a fixed 256K sequence), regenerated from
// the tuner's own analytic pricing instead of a hand-rolled bench loop, plus
// the shape check CI holds the curve to: memory monotone in chunk size, MFU
// rising strictly up to the modeled sweet spot and flat beyond it (§5.3's
// "64K balances both").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"

namespace fpdt::tune {

struct ChunkSweepRow {
  std::string model;
  int world = 0;
  std::int64_t chunk_tokens = 0;  // global chunk size (§5.3)
  std::int64_t chunks = 0;        // s_global / chunk_tokens
  double mfu = 0.0;
  std::int64_t hbm_total = 0;
  std::int64_t model_state = 0;
  std::int64_t activations = 0;
};

// The paper's four Fig. 12 model/world cases, chunk 8K..s_global doubling.
std::vector<ChunkSweepRow> chunk_sweep(std::int64_t s_global = 256 * 1024);

// Renders the rows in the exact bench_fig12 table/CSV format, so the CSV the
// tuner writes is drop-in for the one the bench used to produce.
TextTable chunk_sweep_table(const std::vector<ChunkSweepRow>& rows);

// Monotone-then-flat contract, per model series:
//   - hbm_total never decreases as the chunk grows;
//   - the sweet spot (smallest chunk within `flat_tol` MFU of the series
//     max) sits in [32K, 128K], around the paper's modeled 64K;
//   - MFU strictly increases up to the sweet spot and stays within
//     `flat_tol` of the max beyond it.
// On failure returns false and explains in *why.
bool check_chunk_curve(const std::vector<ChunkSweepRow>& rows, std::string* why,
                       double flat_tol = 0.03);

}  // namespace fpdt::tune
