// `fpdt tune` driver: plan -> prune -> execute top-K -> ranked TuneReport.
//
// The winner is the fastest *measured* configuration whose *measured* HBM
// peak fits the budget; the analytic model only decides what gets executed
// (pruning + execution order), never the final ranking. Every executed row
// carries its modeled-vs-measured deltas so model drift stays visible —
// when the ratios wander, the cost model needs recalibration, not trust.
//
// Reports are bit-identical for identical requests, with the result cache
// cold or warm: ranking ties break on candidate labels, cache entries
// round-trip doubles exactly, and cache statistics are kept out of the
// rendered table/JSON on purpose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tune/planner.h"
#include "tune/runner.h"

namespace fpdt::tune {

struct TuneRow {
  PlannedCandidate planned;
  bool executed = false;
  Measurement measured;      // valid only when executed
  bool fits_budget = false;  // measured HBM peak <= budget
  // Modeled-vs-measured drift, measured / modeled (0 when not executed):
  double time_ratio = 0.0;  // virtual_step_s / modeled step_s
  double mem_ratio = 0.0;   // hbm_peak_bytes / modeled device_total
  std::string status;       // winner | fits | over-budget | skipped | pruned
};

struct TuneReport {
  // Request echo.
  std::string model;
  int world = 0;
  std::int64_t s_global = 0;
  std::int64_t budget_bytes = 0;
  int top_k = 0;
  int steps = 0;
  std::uint64_t seed = 0;

  // Ranked rows: executed (fastest measured tok/s first), then skipped
  // (fastest modeled first), then pruned (label order).
  std::vector<TuneRow> rows;
  int winner = -1;  // index into rows; -1 = nothing executed fits

  int enumerated = 0;
  int pruned_count = 0;
  int executed_count = 0;
  // Cache effectiveness of this run. Deliberately NOT rendered by table()/
  // json(): identical requests must produce bit-identical reports whether
  // the cache was cold or warm.
  int cache_hits = 0;

  const TuneRow* winning() const { return winner >= 0 ? &rows[static_cast<std::size_t>(winner)] : nullptr; }
  // The knob set to train with; only valid when winner >= 0.
  core::FpdtConfig winning_config() const;

  std::string table() const;  // ranked ASCII table with per-row deltas
  std::string json() const;   // machine-readable report (ci/tune_smoke.sh)
};

TuneReport tune(const TuneRequest& req);

}  // namespace fpdt::tune
