// Deterministic discrete-event pipeline simulator.
//
// Models the multi-stream execution the paper builds on ("we deploy three
// CUDA streams", §4.1): each resource (compute stream, H2D DMA, D2H DMA,
// NVLink/IB collective engine) executes its tasks FIFO in submission order —
// CUDA stream semantics — and a task additionally waits for its cross-stream
// dependencies (CUDA events). With durations from the cost model this
// yields the makespan of any chunk schedule, which is how the simulator
// decides whether offloading hides behind attention compute (Fig. 8 GPU
// starving vs Fig. 9 HBM wasting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpdt::sim {

struct SimTask {
  int id = 0;
  int resource = 0;
  double duration = 0.0;
  std::vector<int> deps;
  std::string name;
  double start = 0.0;
  double finish = 0.0;
};

class PipelineSim {
 public:
  int add_resource(std::string name);

  // Tasks on one resource execute FIFO in add order; `deps` are task ids
  // that must finish first (cross-resource events).
  int add_task(int resource, double duration, std::vector<int> deps, std::string name = {});

  // Computes the schedule; returns the makespan in seconds.
  double run();

  const SimTask& task(int id) const { return tasks_[static_cast<std::size_t>(id)]; }
  std::size_t task_count() const { return tasks_.size(); }

  // Busy time per resource (after run()).
  double resource_busy(int resource) const;
  const std::string& resource_name(int r) const {
    return resource_names_[static_cast<std::size_t>(r)];
  }
  int resource_count() const { return static_cast<int>(resource_names_.size()); }

  // Human-readable textual dump for debugging/benchmark output.
  std::string trace(int max_tasks = 64) const;

  // chrome://tracing-compatible JSON ("traceEvents" array of complete
  // events, one track per resource; microsecond timestamps).
  std::string chrome_trace_json() const;

 private:
  std::vector<std::string> resource_names_;
  std::vector<SimTask> tasks_;
  bool ran_ = false;
};

}  // namespace fpdt::sim
