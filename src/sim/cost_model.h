// Operation latency model over a HardwareSpec — the simulator's analogue of
// the microbenchmarks in Fig. 10 (All2All, attention fwd/bwd, host-to-device
// fetch strategies).
#pragma once

#include <cstdint>

#include "nn/model_config.h"
#include "sim/hardware.h"

namespace fpdt::sim {

// Host-fetch strategies profiled in §4.2.
enum class FetchStrategy {
  kPerGpu,           // every GPU issues its own DMA (contended PCIe lanes)
  kOneGpuScatter,    // one GPU fetches all, then NVLink scatter + sync
  kPerGpuExclusive,  // a single GPU active on the link (uncontended bound)
};

class CostModel {
 public:
  CostModel(HardwareSpec hw, int world) : hw_(hw), world_(world) {}

  const HardwareSpec& hw() const { return hw_; }
  int world() const { return world_; }
  bool multi_node() const { return world_ > hw_.gpus_per_node; }

  // ---- Compute ----
  double gemm_time(double flops) const;
  double attn_time(double flops) const;

  // FLOPs of one attention chunk pair: cq query rows vs ck key rows over
  // h_local heads of dim dh (QKᵀ + PV, multiply-accumulate = 2 FLOPs).
  static double attn_pair_flops(std::int64_t cq, std::int64_t ck, std::int64_t h_local,
                                std::int64_t dh) {
    return 4.0 * static_cast<double>(cq) * static_cast<double>(ck) *
           static_cast<double>(h_local) * static_cast<double>(dh);
  }

  // ---- Collectives (per-GPU payload bytes) ----
  // Ulysses All2All: each GPU exchanges (P-1)/P of its payload; traffic to
  // off-node peers shares the node's IB HCA.
  double all2all_time(std::int64_t bytes_per_gpu) const;
  // Ring all-gather / reduce-scatter of a [s, d] activation (bytes = full
  // gathered size).
  double allgather_time(std::int64_t full_bytes) const;
  double reduce_scatter_time(std::int64_t full_bytes) const;
  double allreduce_time(std::int64_t bytes) const;
  double p2p_time(std::int64_t bytes) const;

  // ---- Host link (Fig. 10's three fetch strategies) ----
  double fetch_time(std::int64_t bytes_per_gpu, FetchStrategy strategy) const;
  double h2d_time(std::int64_t bytes) const {
    return fetch_time(bytes, FetchStrategy::kPerGpu);
  }
  double d2h_time(std::int64_t bytes) const {
    return fetch_time(bytes, FetchStrategy::kPerGpu);
  }

 private:
  double inter_bw_per_gpu() const {
    return hw_.ib_bw / static_cast<double>(hw_.gpus_per_node);
  }

  HardwareSpec hw_;
  int world_;
};

}  // namespace fpdt::sim
