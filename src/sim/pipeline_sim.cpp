#include "sim/pipeline_sim.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace fpdt::sim {

int PipelineSim::add_resource(std::string name) {
  resource_names_.push_back(std::move(name));
  return static_cast<int>(resource_names_.size()) - 1;
}

int PipelineSim::add_task(int resource, double duration, std::vector<int> deps,
                          std::string name) {
  FPDT_CHECK(resource >= 0 && resource < resource_count()) << " unknown resource";
  FPDT_CHECK_GE(duration, 0.0) << " negative duration";
  const int id = static_cast<int>(tasks_.size());
  for (int dep : deps) {
    FPDT_CHECK(dep >= 0 && dep < id) << " dep " << dep << " of task " << id
                                     << " must precede it";
  }
  tasks_.push_back(SimTask{id, resource, duration, std::move(deps), std::move(name), 0, 0});
  return id;
}

double PipelineSim::run() {
  // Tasks are topologically ordered by construction (deps precede), and
  // FIFO-per-resource is realised by tracking each resource's free time in
  // submission order.
  std::vector<double> resource_free(resource_names_.size(), 0.0);
  double makespan = 0.0;
  for (SimTask& t : tasks_) {
    double ready = resource_free[static_cast<std::size_t>(t.resource)];
    for (int dep : t.deps) {
      ready = std::max(ready, tasks_[static_cast<std::size_t>(dep)].finish);
    }
    t.start = ready;
    t.finish = ready + t.duration;
    resource_free[static_cast<std::size_t>(t.resource)] = t.finish;
    makespan = std::max(makespan, t.finish);
  }
  ran_ = true;
  return makespan;
}

double PipelineSim::resource_busy(int resource) const {
  FPDT_CHECK(ran_) << " resource_busy before run()";
  double busy = 0.0;
  for (const SimTask& t : tasks_) {
    if (t.resource == resource) busy += t.duration;
  }
  return busy;
}

std::string PipelineSim::trace(int max_tasks) const {
  std::ostringstream os;
  int shown = 0;
  for (const SimTask& t : tasks_) {
    if (shown++ >= max_tasks) {
      os << "... (" << tasks_.size() - static_cast<std::size_t>(max_tasks) << " more)\n";
      break;
    }
    os << "[" << resource_names_[static_cast<std::size_t>(t.resource)] << "] " << t.name << " "
       << format_seconds(t.start) << " -> " << format_seconds(t.finish) << "\n";
  }
  return os.str();
}

std::string PipelineSim::chrome_trace_json() const {
  FPDT_CHECK(ran_) << " chrome_trace_json before run()";
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SimTask& t : tasks_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << t.name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << t.resource << ",\"ts\":" << t.start * 1e6 << ",\"dur\":" << t.duration * 1e6
       << "}";
  }
  // Thread-name metadata so the tracks are labelled with resource names.
  for (std::size_t r = 0; r < resource_names_.size(); ++r) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"" << resource_names_[r] << "\"}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace fpdt::sim
