#include "sim/timeline.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace fpdt::sim {

namespace {

constexpr std::int64_t kBf16 = 2;

struct LayerShapes {
  std::int64_t d, dh, h, hk, kv_dim, ffn, c_local, c_global, h_local, hk_local, u;
  bool llama;

  double proj_qkv_flops() const {
    return 2.0 * static_cast<double>(c_local) * static_cast<double>(d) *
           static_cast<double>(d + 2 * kv_dim);
  }
  double proj_out_flops() const {
    return 2.0 * static_cast<double>(c_local) * static_cast<double>(d) *
           static_cast<double>(d);
  }
  double ffn_flops() const {
    return 2.0 * static_cast<double>(c_local) * static_cast<double>(d) *
           static_cast<double>(ffn) * (llama ? 3.0 : 2.0);
  }
  std::int64_t qkv_chunk_bytes() const { return c_local * (d + 2 * kv_dim) * kBf16; }
  std::int64_t kv_hat_chunk_bytes() const { return 2 * c_global * hk_local * dh * kBf16; }
  std::int64_t q_hat_chunk_bytes() const { return c_global * h_local * dh * kBf16; }
  std::int64_t hidden_chunk_bytes() const { return c_local * d * kBf16; }
};

LayerShapes shapes_of(const nn::ModelConfig& cfg, int world, std::int64_t s_local,
                      std::int64_t u) {
  LayerShapes s{};
  s.d = cfg.d_model;
  s.dh = cfg.head_dim();
  s.h = cfg.n_head;
  s.hk = cfg.n_kv_head;
  s.kv_dim = cfg.n_kv_head * cfg.head_dim();
  s.ffn = cfg.ffn_hidden;
  s.u = u;
  s.c_local = s_local / u;
  s.c_global = s.c_local * world;
  s.h_local = std::max<std::int64_t>(1, cfg.n_head / world);
  s.hk_local = std::max<std::int64_t>(1, cfg.n_kv_head / world);
  s.llama = cfg.arch == nn::Arch::kLlama;
  return s;
}

// Builds the FPDT forward chunk pipeline into `ps`. Returns, per chunk, the
// id of its last compute task. `caching` adds the backward-cache offload
// traffic (q̂/ô/lse on top of k̂/v̂).
std::vector<int> build_fpdt_forward(PipelineSim& ps, int comp, int h2d, int d2h, int comm,
                                    const LayerShapes& sh, const CostModel& cm, bool offload,
                                    bool double_buffer, bool caching) {
  std::vector<int> chunk_done;
  // attn_task[i][j] ids for prefetch-window dependencies.
  std::vector<std::vector<int>> attn_task(static_cast<std::size_t>(sh.u));
  std::vector<int> offload_kv(static_cast<std::size_t>(sh.u), -1);
  for (std::int64_t i = 0; i < sh.u; ++i) {
    const int proj = ps.add_task(comp, cm.gemm_time(sh.proj_qkv_flops()), {},
                                 "proj.q" + std::to_string(i));
    const int a2a = ps.add_task(comm, cm.all2all_time(sh.qkv_chunk_bytes()), {proj},
                                "a2a." + std::to_string(i));
    int last_attn = -1;
    for (std::int64_t j = 0; j <= i; ++j) {
      std::vector<int> deps = {a2a};
      if (last_attn >= 0) deps.push_back(last_attn);
      if (offload && j < i) {
        // Fetch k̂ⱼ/v̂ⱼ from host; gated by the offload that produced it and
        // by the double-buffer window (the buffer of chunk j-2 or j-1 must
        // have retired).
        std::vector<int> fdeps;
        if (offload_kv[static_cast<std::size_t>(j)] >= 0) {
          fdeps.push_back(offload_kv[static_cast<std::size_t>(j)]);
        }
        const std::int64_t window = double_buffer ? 2 : 1;
        if (j >= window) {
          fdeps.push_back(attn_task[static_cast<std::size_t>(i)][static_cast<std::size_t>(
              j - window)]);
        }
        const int fetch = ps.add_task(h2d, cm.h2d_time(sh.kv_hat_chunk_bytes()),
                                      std::move(fdeps),
                                      "fetch.kv" + std::to_string(j));
        deps.push_back(fetch);
      }
      // The diagonal chunk pair is causally masked to half its work; pairs
      // below the diagonal are dense.
      const double causal_frac = (j == i) ? 0.5 : 1.0;
      const double flops =
          causal_frac *
          CostModel::attn_pair_flops(sh.c_global, sh.c_global, sh.h_local, sh.dh);
      last_attn = ps.add_task(comp, cm.attn_time(flops), std::move(deps),
                              "attn." + std::to_string(i) + "." + std::to_string(j));
      attn_task[static_cast<std::size_t>(i)].push_back(last_attn);
    }
    if (offload) {
      std::int64_t bytes = sh.kv_hat_chunk_bytes();
      if (caching) bytes += 2 * sh.q_hat_chunk_bytes();  // q̂ and ô (+lse, minor)
      offload_kv[static_cast<std::size_t>(i)] =
          ps.add_task(d2h, cm.d2h_time(bytes), {a2a, last_attn}, "offload." + std::to_string(i));
    }
    const int a2a_back = ps.add_task(comm, cm.all2all_time(sh.q_hat_chunk_bytes()), {last_attn},
                                     "a2a_back." + std::to_string(i));
    const int post = ps.add_task(
        comp, cm.gemm_time(sh.proj_out_flops()) + cm.gemm_time(sh.ffn_flops()), {a2a_back},
        "post." + std::to_string(i));
    chunk_done.push_back(post);
  }
  return chunk_done;
}

LayerTiming finish(PipelineSim& fwd, PipelineSim& bwd, int comp, int h2d, int d2h, int comm) {
  LayerTiming t;
  t.forward_s = fwd.run();
  t.backward_s = bwd.run();
  t.compute_busy_s = fwd.resource_busy(comp) + bwd.resource_busy(comp);
  t.h2d_busy_s = fwd.resource_busy(h2d) + bwd.resource_busy(h2d);
  t.d2h_busy_s = fwd.resource_busy(d2h) + bwd.resource_busy(d2h);
  t.comm_busy_s = fwd.resource_busy(comm) + bwd.resource_busy(comm);
  return t;
}

}  // namespace

LayerTiming fpdt_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                              std::int64_t s_local, std::int64_t u, bool offload,
                              bool double_buffer, bool cache_fwd_outputs) {
  FPDT_CHECK_EQ(s_local % u, 0) << " chunking divisibility";
  const LayerShapes sh = shapes_of(cfg, cm.world(), s_local, u);

  // Forward: when caching for backward, the chunk caches (q̂/ô on top of
  // k̂/v̂) are offloaded from the real forward pass.
  PipelineSim fwd;
  const int comp = fwd.add_resource("compute");
  const int h2d = fwd.add_resource("h2d");
  const int d2h = fwd.add_resource("d2h");
  const int comm = fwd.add_resource("comm");
  build_fpdt_forward(fwd, comp, h2d, d2h, comm, sh, cm, offload, double_buffer,
                     /*caching=*/cache_fwd_outputs);

  PipelineSim bwd;
  const int bcomp = bwd.add_resource("compute");
  const int bh2d = bwd.add_resource("h2d");
  const int bd2h = bwd.add_resource("d2h");
  const int bcomm = bwd.add_resource("comm");
  if (!cache_fwd_outputs) {
    // Plain activation checkpointing: backward re-runs the chunked forward
    // first, producing the caches (the fallback when host memory cannot
    // hold per-layer caches for the whole model).
    build_fpdt_forward(bwd, bcomp, bh2d, bd2h, bcomm, sh, cm, offload, double_buffer,
                       /*caching=*/true);
  }

  // Phase A: per chunk, FFN backward (with internal recompute ≈ 3× fwd
  // GEMMs), Wo backward, two All2Alls.
  std::vector<int> phase_a_done(static_cast<std::size_t>(sh.u));
  for (std::int64_t i = 0; i < sh.u; ++i) {
    std::vector<int> fdeps;
    const int fetch_y =
        offload ? bwd.add_task(bh2d, cm.h2d_time(sh.hidden_chunk_bytes()), {},
                               "fetch.y" + std::to_string(i))
                : -1;
    std::vector<int> deps;
    if (fetch_y >= 0) deps.push_back(fetch_y);
    const int ffn_bwd = bwd.add_task(bcomp, cm.gemm_time(3.0 * sh.ffn_flops()), deps,
                                     "ffn_bwd." + std::to_string(i));
    const int a2a_o = bwd.add_task(bcomm, cm.all2all_time(sh.q_hat_chunk_bytes()), {ffn_bwd},
                                   "a2a_o." + std::to_string(i));
    const int wo_bwd = bwd.add_task(bcomp, cm.gemm_time(2.0 * sh.proj_out_flops()), {a2a_o},
                                    "wo_bwd." + std::to_string(i));
    phase_a_done[static_cast<std::size_t>(i)] =
        bwd.add_task(bcomm, cm.all2all_time(sh.q_hat_chunk_bytes()), {wo_bwd},
                     "a2a_do." + std::to_string(i));
  }

  // Phase B: outer KV chunks, inner query chunks; fetches overlap the
  // 2.5×-forward attention backward kernels; All2All + projection backward
  // of chunk j overlaps the next outer iteration's prefetches.
  int prev_attn = -1;
  for (std::int64_t j = 0; j < sh.u; ++j) {
    const int fetch_kv = offload
                             ? bwd.add_task(bh2d, cm.h2d_time(sh.kv_hat_chunk_bytes()), {},
                                            "bfetch.kv" + std::to_string(j))
                             : -1;
    int last = -1;
    for (std::int64_t i = j; i < sh.u; ++i) {
      std::vector<int> deps = {phase_a_done[static_cast<std::size_t>(i)]};
      if (fetch_kv >= 0) deps.push_back(fetch_kv);
      if (offload) {
        // q̂ᵢ, dôᵢ and the dq̂ᵢ accumulator stream in from host.
        const int fetch_q = bwd.add_task(
            bh2d, cm.h2d_time(3 * sh.q_hat_chunk_bytes()),
            prev_attn >= 0 ? std::vector<int>{prev_attn} : std::vector<int>{},
            "bfetch.q" + std::to_string(i));
        deps.push_back(fetch_q);
      }
      if (last >= 0) deps.push_back(last);
      const double causal_frac = (j == i) ? 0.5 : 1.0;
      const double flops = 2.5 * causal_frac *
                           CostModel::attn_pair_flops(sh.c_global, sh.c_global, sh.h_local,
                                                      sh.dh);
      last = bwd.add_task(bcomp, cm.attn_time(flops), std::move(deps),
                          "attn_bwd." + std::to_string(j) + "." + std::to_string(i));
      prev_attn = last;
      if (offload && i > j) {
        bwd.add_task(bd2h, cm.d2h_time(sh.q_hat_chunk_bytes()), {last},
                     "offload.dq" + std::to_string(i));
      }
    }
    const int a2a_dqkv = bwd.add_task(
        bcomm, cm.all2all_time(sh.qkv_chunk_bytes()), {last}, "a2a_dqkv." + std::to_string(j));
    bwd.add_task(bcomp, cm.gemm_time(2.0 * sh.proj_qkv_flops()), {a2a_dqkv},
                 "proj_bwd." + std::to_string(j));
  }

  return finish(fwd, bwd, comp, h2d, d2h, comm);
}

PipelineSim build_fpdt_forward_sim(const nn::ModelConfig& cfg, const CostModel& cm,
                                   std::int64_t s_local, std::int64_t u, bool offload,
                                   bool double_buffer, bool caching) {
  const LayerShapes sh = shapes_of(cfg, cm.world(), s_local, u);
  PipelineSim ps;
  const int comp = ps.add_resource("compute");
  const int h2d = ps.add_resource("h2d");
  const int d2h = ps.add_resource("d2h");
  const int comm = ps.add_resource("comm");
  build_fpdt_forward(ps, comp, h2d, d2h, comm, sh, cm, offload, double_buffer, caching);
  ps.run();
  return ps;
}

std::string fpdt_forward_trace(const nn::ModelConfig& cfg, const CostModel& cm,
                               std::int64_t s_local, std::int64_t u, bool offload,
                               bool double_buffer, int max_tasks) {
  return build_fpdt_forward_sim(cfg, cm, s_local, u, offload, double_buffer).trace(max_tasks);
}

LayerTiming ulysses_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                                 std::int64_t s_local) {
  // Single chunk, no offload, and the generic activation-checkpoint
  // recompute in backward.
  return fpdt_layer_timing(cfg, cm, s_local, /*u=*/1, /*offload=*/false,
                           /*double_buffer=*/false, /*cache_fwd_outputs=*/false);
}

LayerTiming megatron_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                                  std::int64_t s_local, bool seq_parallel,
                                  bool activation_checkpoint) {
  const int P = cm.world();
  const std::int64_t s = s_local * (seq_parallel ? P : 1);
  const LayerShapes sh = shapes_of(cfg, P, s, 1);  // full sequence per rank

  // TP GEMMs are 1/P of the full layer; attention runs h/P heads over the
  // full sequence. Collectives are exposed (not overlapped) — the property
  // that hurts Megatron-SP across nodes (§5.2).
  const double gemm_fwd =
      (sh.proj_qkv_flops() + sh.proj_out_flops() + sh.ffn_flops()) / P;
  const double attn_fwd =
      CostModel::attn_pair_flops(s, s, std::max<std::int64_t>(1, cfg.n_head / P),
                                 cfg.head_dim()) /
      2.0;  // causal halves the realised pair work
  const std::int64_t act_bytes = s * cfg.d_model * kBf16;

  double comm_fwd = 0.0;
  if (P > 1) {
    comm_fwd = seq_parallel
                   ? 2.0 * (cm.allgather_time(act_bytes) + cm.reduce_scatter_time(act_bytes))
                   : 2.0 * cm.allreduce_time(act_bytes);
  }
  LayerTiming t;
  t.forward_s = cm.gemm_time(gemm_fwd) + cm.attn_time(attn_fwd) + comm_fwd;
  const double recompute = activation_checkpoint ? t.forward_s : 0.0;
  t.backward_s = recompute + cm.gemm_time(2.0 * gemm_fwd) + cm.attn_time(2.5 * attn_fwd) +
                 comm_fwd;  // mirrored collectives
  t.compute_busy_s = cm.gemm_time(gemm_fwd * (activation_checkpoint ? 4.0 : 3.0)) +
                     cm.attn_time(attn_fwd * (activation_checkpoint ? 4.5 : 3.5));
  t.comm_busy_s = comm_fwd * (activation_checkpoint ? 3.0 : 2.0);
  return t;
}

LayerTiming ring_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                              std::int64_t s_local) {
  const int P = cm.world();
  const LayerShapes sh = shapes_of(cfg, 1, s_local, 1);  // full heads per rank
  // P rounds; each round the critical rank computes a full (s_local,
  // s_local) block (causal imbalance: the last rank is never masked), and
  // the KV block transfer overlaps compute.
  const double block_flops =
      CostModel::attn_pair_flops(s_local, s_local, cfg.n_head, cfg.head_dim());
  const std::int64_t kv_block_bytes = 2 * s_local * sh.kv_dim * kBf16;
  const double round = std::max(cm.attn_time(block_flops), cm.p2p_time(kv_block_bytes));
  const double gemms =
      cm.gemm_time(sh.proj_qkv_flops() + sh.proj_out_flops() + sh.ffn_flops());
  LayerTiming t;
  t.forward_s = gemms + P * round;
  t.backward_s = t.forward_s + cm.gemm_time(2.0 * (sh.proj_qkv_flops() + sh.proj_out_flops() +
                                                   sh.ffn_flops())) +
                 P * std::max(cm.attn_time(2.5 * block_flops), cm.p2p_time(kv_block_bytes));
  t.compute_busy_s = t.forward_s + t.backward_s;
  return t;
}

StepEstimate step_estimate(const nn::ModelConfig& cfg, const CostModel& cm,
                           std::int64_t s_global, const LayerTiming& layer, bool chunked_head) {
  const std::int64_t s_local = s_global / cm.world();
  // Loss head + embedding: 3 fused GEMM passes over [s_local, d]×[d, V].
  // The unchunked baseline head runs in FP32 (§5.4) at roughly half the
  // BF16 tensor-core throughput.
  const double head_flops = 6.0 * static_cast<double>(s_local) *
                            static_cast<double>(cfg.d_model) * static_cast<double>(cfg.vocab);
  StepEstimate est;
  const double head_time =
      chunked_head ? cm.gemm_time(head_flops) : 2.0 * cm.gemm_time(head_flops);
  est.step_s = layer.total() * static_cast<double>(cfg.n_layer) + head_time;
  const double useful =
      cfg.train_flops_per_token(s_global) * static_cast<double>(s_global) /
      static_cast<double>(cm.world());
  est.mfu = useful / (est.step_s * cm.hw().peak_flops);
  return est;
}

}  // namespace fpdt::sim
