// Timeline builders: turn a (model, strategy, sequence) triple into a
// per-layer task graph on the four engines (compute, H2D, D2H, collective)
// and simulate it. These produce the step times behind every MFU number in
// Figs. 1, 11, 12 and Table 3.
#pragma once

#include <cstdint>
#include <string>

#include "nn/model_config.h"
#include "sim/cost_model.h"
#include "sim/pipeline_sim.h"

namespace fpdt::sim {

struct LayerTiming {
  double forward_s = 0.0;
  double backward_s = 0.0;  // includes activation-checkpoint recompute
  double compute_busy_s = 0.0;
  double h2d_busy_s = 0.0;
  double d2h_busy_s = 0.0;
  double comm_busy_s = 0.0;
  double total() const { return forward_s + backward_s; }
};

// FPDT chunk pipeline (Figs. 5 and 7). s_local = per-GPU sequence;
// u = chunks per rank; offload toggles host caching of q̂/k̂/v̂/ô;
// double_buffer controls the prefetch window (2 vs 1 resident KV chunks).
LayerTiming fpdt_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                              std::int64_t s_local, std::int64_t u, bool offload,
                              bool double_buffer, bool cache_fwd_outputs = true);

// Ulysses = single-chunk FPDT without offload.
LayerTiming ulysses_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                                 std::int64_t s_local);

// Megatron tensor parallelism; seq_parallel=true is Megatron-SP (all-gather/
// reduce-scatter in the norm regions), false is plain TP (all-reduce per
// block) as in Table 3's first rows.
LayerTiming megatron_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                                  std::int64_t s_local, bool seq_parallel,
                                  bool activation_checkpoint);

// Ring Attention: P blockwise steps whose P2P transfers overlap compute but
// whose causal load imbalance leaves the last rank on the critical path.
LayerTiming ring_layer_timing(const nn::ModelConfig& cfg, const CostModel& cm,
                              std::int64_t s_local);

// The simulated FPDT forward chunk pipeline as a ready-to-run PipelineSim
// (already run()); callers can pull the text trace or chrome://tracing JSON.
// `caching` adds the backward-cache offload traffic (q̂/ô/lse on top of
// k̂/v̂) — matches cfg.cache_forward_outputs of the executed system.
PipelineSim build_fpdt_forward_sim(const nn::ModelConfig& cfg, const CostModel& cm,
                                   std::int64_t s_local, std::int64_t u, bool offload,
                                   bool double_buffer, bool caching = true);

// Human-readable task trace of the simulated FPDT forward chunk pipeline
// (for debugging and the pipeline_trace example).
std::string fpdt_forward_trace(const nn::ModelConfig& cfg, const CostModel& cm,
                               std::int64_t s_local, std::int64_t u, bool offload,
                               bool double_buffer, int max_tasks = 64);

struct StepEstimate {
  double step_s = 0.0;
  double mfu = 0.0;
};

// Full training step: n_layer copies of the layer timing plus the (chunked)
// loss head, with MFU = useful model FLOPs / (time × GPUs × peak).
StepEstimate step_estimate(const nn::ModelConfig& cfg, const CostModel& cm,
                           std::int64_t s_global, const LayerTiming& layer,
                           bool chunked_head = true);

}  // namespace fpdt::sim
