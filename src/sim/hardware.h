// Hardware description of the paper's testbed (§5.1): nodes of four A100
// 80 GB GPUs on 3rd-gen NVLink, two CPU sockets, PCIe Gen-4 ×16 to host
// (32 GB/s unidirectional theoretical), 1 TB host memory, 200 Gb/s HDR
// InfiniBand between nodes. A100 40 GB variants cover Table 1's left half.
//
// Efficiency factors are calibration constants (documented in DESIGN.md §6):
// they set achievable fractions of peak for each engine and are the only
// fitted quantities in the simulator.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/units.h"

namespace fpdt::sim {

struct HardwareSpec {
  // Compute.
  double peak_flops = 312e12;     // A100 BF16 tensor core peak
  double matmul_efficiency = 0.62;  // achievable fraction for dense GEMM
  double attn_efficiency = 0.45;    // fused attention kernels
  double kernel_overhead_s = 12e-6;  // fixed launch/dispatch cost per kernel

  // Memory bandwidth: HBM2e peak per GPU (2039 GB/s on the 80 GB SXM part,
  // 1555 GB/s on the 40 GB). Denominator of the roofline's memory ceiling.
  double hbm_bw = 2039e9;

  // Memory capacities.
  std::int64_t hbm_bytes = 80LL * kGiB;
  std::int64_t hbm_reserve_bytes = 4LL * kGiB;  // framework/fragmentation
  std::int64_t host_bytes = 1024LL * kGiB;      // per node

  // Interconnect.
  double nvlink_bw = 100e9;        // effective per-GPU p2p (§4.2 "more than 100 GB/s")
  double nvlink_latency_s = 5e-6;
  double pcie_bw = 32e9;           // Gen-4 x16 unidirectional
  double pcie_latency_s = 15e-6;
  double ib_bw = 25e9;             // 200 Gb/s HDR, per node
  double ib_latency_s = 8e-6;

  // Topology.
  int gpus_per_node = 4;
  int sockets_per_node = 2;

  std::int64_t usable_hbm() const { return hbm_bytes - hbm_reserve_bytes; }

  // GPUs sharing one socket's PCIe lanes contend; each gets this fraction
  // of pcie_bw when all issue DMA simultaneously (the "multi-GPU HtoD"
  // strategy of §4.2).
  double pcie_share() const {
    const int per_socket = (gpus_per_node + sockets_per_node - 1) / sockets_per_node;
    return 1.0 / static_cast<double>(per_socket);
  }
};

inline HardwareSpec a100_80g_node() { return HardwareSpec{}; }

inline HardwareSpec a100_40g_node() {
  HardwareSpec hw;
  hw.hbm_bytes = 40LL * kGiB;
  hw.hbm_bw = 1555e9;
  return hw;
}

// ---- Presets ---------------------------------------------------------------
// Named hardware profiles selectable with `--hw` on `fpdt profile` / `tune` /
// `topo`. Each is a complete HardwareSpec; topo::Topology reads the intra
// link off nvlink_* and the inter link off ib_*, so "pcie-host" models a
// host without NVLink by pointing the intra-node link at PCIe numbers.

inline HardwareSpec pcie_host_node() {
  HardwareSpec hw;
  hw.nvlink_bw = hw.pcie_bw;
  hw.nvlink_latency_s = hw.pcie_latency_s;
  return hw;
}

inline const char* hw_preset_names() { return "a100-nvlink, a100-40g, pcie-host"; }

inline HardwareSpec hw_preset(const std::string& name) {
  if (name.empty() || name == "a100-nvlink" || name == "a100" || name == "a100-80g") {
    return a100_80g_node();
  }
  if (name == "a100-40g") return a100_40g_node();
  if (name == "pcie-host") return pcie_host_node();
  throw FpdtError("unknown hardware preset '" + name + "' (known: " +
                  std::string(hw_preset_names()) + ")");
}

// ---- Roofline -------------------------------------------------------------
// Utilization of one GPU-equivalent that performed `flops` FLOPs and moved
// `bytes` ideal bytes over `seconds`: the numbers obs::StepProfiler and
// `fpdt bench` report. All denominators are *per device*; callers divide
// whole-group work by world size (or multiply seconds) before evaluating.
struct RooflinePoint {
  double mfu = 0.0;            // flops / (seconds · peak_flops)
  double achieved_gbps = 0.0;  // bytes / seconds / 1e9
  double intensity = 0.0;      // flops / bytes (FLOP/B)
  bool memory_bound = false;   // intensity below the ridge point
};

inline RooflinePoint roofline_eval(const HardwareSpec& hw, double flops, double bytes,
                                   double seconds) {
  RooflinePoint p;
  if (seconds > 0.0) {
    p.mfu = flops / (seconds * hw.peak_flops);
    p.achieved_gbps = bytes / seconds / 1e9;
  }
  if (bytes > 0.0) p.intensity = flops / bytes;
  // Ridge point: intensity at which compute and memory ceilings meet.
  p.memory_bound = p.intensity < hw.peak_flops / hw.hbm_bw;
  return p;
}

}  // namespace fpdt::sim
