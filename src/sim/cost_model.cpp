#include "sim/cost_model.h"

#include <algorithm>

#include "common/check.h"

namespace fpdt::sim {

double CostModel::gemm_time(double flops) const {
  return flops / (hw_.peak_flops * hw_.matmul_efficiency) + hw_.kernel_overhead_s;
}

double CostModel::attn_time(double flops) const {
  return flops / (hw_.peak_flops * hw_.attn_efficiency) + hw_.kernel_overhead_s;
}

double CostModel::all2all_time(std::int64_t bytes_per_gpu) const {
  if (world_ <= 1) return 0.0;
  const double sent = static_cast<double>(bytes_per_gpu) * (world_ - 1) / world_;
  if (!multi_node()) {
    return sent / hw_.nvlink_bw + hw_.nvlink_latency_s;
  }
  // Fraction of peers on other nodes funnels through the shared HCA.
  const double off_node_fraction =
      static_cast<double>(world_ - hw_.gpus_per_node) / static_cast<double>(world_ - 1);
  const double inter = sent * off_node_fraction;
  const double intra = sent - inter;
  return std::max(intra / hw_.nvlink_bw, inter / inter_bw_per_gpu()) + hw_.ib_latency_s;
}

double CostModel::allgather_time(std::int64_t full_bytes) const {
  if (world_ <= 1) return 0.0;
  // Ring collective: each link carries (P-1)/P of the payload; across nodes
  // only the two ring edges on the HCA cross IB, so the bottleneck is the
  // full HCA bandwidth (unlike All2All's all-pairs sharing).
  const double moved = static_cast<double>(full_bytes) * (world_ - 1) / world_;
  // NCCL ring efficiency across nodes is well below line rate in practice.
  const double bw = multi_node() ? 0.3 * hw_.ib_bw : 0.85 * hw_.nvlink_bw;
  const double lat = multi_node() ? hw_.ib_latency_s : hw_.nvlink_latency_s;
  return moved / bw + (world_ - 1) * lat;
}

double CostModel::reduce_scatter_time(std::int64_t full_bytes) const {
  // Same ring volume as all-gather.
  return allgather_time(full_bytes);
}

double CostModel::allreduce_time(std::int64_t bytes) const {
  // Ring allreduce = reduce-scatter + all-gather.
  return 2.0 * allgather_time(bytes);
}

double CostModel::p2p_time(std::int64_t bytes) const {
  const double bw = multi_node() ? inter_bw_per_gpu() : hw_.nvlink_bw;
  const double lat = multi_node() ? hw_.ib_latency_s : hw_.nvlink_latency_s;
  return static_cast<double>(bytes) / bw + lat;
}

double CostModel::fetch_time(std::int64_t bytes_per_gpu, FetchStrategy strategy) const {
  const int gpus_on_link = std::min(world_, hw_.gpus_per_node);
  switch (strategy) {
    case FetchStrategy::kPerGpu: {
      // All GPUs DMA simultaneously: per-socket lane sharing plus a lane-
      // contention penalty that dominates at small sizes (§4.2: "performs
      // worse at smaller data sizes, due to the overhead in lane
      // contention").
      const double share =
          (gpus_on_link > 1) ? hw_.pcie_share() : 1.0;
      const double contention_lat = (gpus_on_link > 1) ? 3.0 * hw_.pcie_latency_s
                                                       : hw_.pcie_latency_s;
      return static_cast<double>(bytes_per_gpu) / (hw_.pcie_bw * share) + contention_lat;
    }
    case FetchStrategy::kOneGpuScatter: {
      // One GPU pulls everyone's bytes at full link speed, then scatters
      // over NVLink; the extra synchronisation shows up as latency.
      const double pull =
          static_cast<double>(bytes_per_gpu) * gpus_on_link / hw_.pcie_bw + hw_.pcie_latency_s;
      const double scatter = static_cast<double>(bytes_per_gpu) * (gpus_on_link - 1) /
                                 gpus_on_link / hw_.nvlink_bw +
                             2.0 * hw_.nvlink_latency_s;
      return pull + scatter;
    }
    case FetchStrategy::kPerGpuExclusive:
      return static_cast<double>(bytes_per_gpu) / hw_.pcie_bw + hw_.pcie_latency_s;
  }
  FPDT_CHECK(false) << " unknown fetch strategy";
  return 0.0;
}

}  // namespace fpdt::sim
