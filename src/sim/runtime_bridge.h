// Bridge between the simulator's cost model and the runtime's stream
// engine, closing the loop between prediction and measurement:
//
//   stream_rates(cm)       derives a runtime::StreamRates from a CostModel
//                          so the executed pipeline's virtual-time spans use
//                          exactly the simulator's constants;
//   sim_timeline_report(s) condenses a simulated FPDT pipeline into the
//                          same TimelineReport the runtime produces, so the
//                          bench can compare measured vs. predicted overlap
//                          on one scale.
//
// The mapping is exact for a single-node group (world <= gpus_per_node):
// beyond that the simulator routes All2All traffic over IB while the
// runtime's single comm rate cannot. The runtime also has no separate comm
// queue — collectives block its compute stream — so sim compute and comm
// spans are merged into one busy list here before computing overlap.
#pragma once

#include <algorithm>
#include <vector>

#include "runtime/stream.h"
#include "sim/cost_model.h"
#include "sim/pipeline_sim.h"

namespace fpdt::sim {

inline runtime::StreamRates stream_rates(const CostModel& cm) {
  const HardwareSpec& hw = cm.hw();
  runtime::StreamRates r;
  r.gemm_flops_per_s = hw.peak_flops * hw.matmul_efficiency;
  r.attn_flops_per_s = hw.peak_flops * hw.attn_efficiency;
  r.kernel_overhead_s = hw.kernel_overhead_s;
  // Mirrors CostModel::fetch_time(kPerGpu): per-socket lane sharing plus
  // the contended-lane latency penalty.
  const int gpus_on_link = std::min(cm.world(), hw.gpus_per_node);
  const double share = gpus_on_link > 1 ? hw.pcie_share() : 1.0;
  r.h2d_bytes_per_s = hw.pcie_bw * share;
  r.d2h_bytes_per_s = hw.pcie_bw * share;
  r.transfer_latency_s = (gpus_on_link > 1 ? 3.0 : 1.0) * hw.pcie_latency_s;
  // Single-node All2All (CostModel::all2all_time's intra-node branch).
  r.comm_bytes_per_s = hw.nvlink_bw;
  r.comm_latency_s = hw.nvlink_latency_s;
  return r;
}

// Sorts by start and coalesces overlapping/adjacent spans into a disjoint
// busy list (sim compute and comm resources run concurrently; the overlap
// computation needs disjoint intervals).
inline std::vector<runtime::StreamSpan> merge_spans(std::vector<runtime::StreamSpan> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const runtime::StreamSpan& a, const runtime::StreamSpan& b) {
              return a.start < b.start;
            });
  std::vector<runtime::StreamSpan> merged;
  for (runtime::StreamSpan& s : spans) {
    if (!merged.empty() && s.start <= merged.back().finish) {
      merged.back().finish = std::max(merged.back().finish, s.finish);
    } else {
      merged.push_back(std::move(s));
    }
  }
  return merged;
}

// Condenses a *ran* PipelineSim (e.g. build_fpdt_forward_sim) into the
// runtime's TimelineReport shape. Resources named "compute" and "comm" form
// the busy list transfers can hide behind; "h2d"/"d2h" are the transfers.
inline runtime::TimelineReport sim_timeline_report(const PipelineSim& ps) {
  std::vector<runtime::StreamSpan> busy, h2d, d2h;
  double makespan = 0.0;
  for (std::size_t t = 0; t < ps.task_count(); ++t) {
    const SimTask& task = ps.task(static_cast<int>(t));
    makespan = std::max(makespan, task.finish);
    runtime::StreamSpan span{task.name, task.start, task.finish};
    const std::string& res = ps.resource_name(task.resource);
    if (res == "h2d") {
      h2d.push_back(std::move(span));
    } else if (res == "d2h") {
      d2h.push_back(std::move(span));
    } else {  // compute + comm both block the runtime's compute queue
      busy.push_back(std::move(span));
    }
  }
  auto sum = [](const std::vector<runtime::StreamSpan>& xs) {
    double s = 0.0;
    for (const runtime::StreamSpan& x : xs) s += x.duration();
    return s;
  };
  const std::vector<runtime::StreamSpan> merged = merge_spans(busy);
  runtime::TimelineReport r;
  r.makespan_s = makespan;
  r.compute_busy_s = sum(merged);
  r.h2d_busy_s = sum(h2d);
  r.d2h_busy_s = sum(d2h);
  r.hidden_transfer_s =
      runtime::overlapped_time(h2d, merged) + runtime::overlapped_time(d2h, merged);
  r.exposed_transfer_s = r.transfer_busy_s() - r.hidden_transfer_s;
  return r;
}

}  // namespace fpdt::sim
