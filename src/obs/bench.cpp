#include "obs/bench.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "core/fpdt_config.h"
#include "kernels/backend.h"
#include "kernels/op_cost.h"
#include "obs/profiler.h"
#include "tune/tuner.h"

namespace fpdt::obs {

namespace {

double finite(double v) { return std::isfinite(v) ? v : 0.0; }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

// Short git revision of the working tree, "unknown" outside a repo (the
// snapshot must stay writable from an exported tarball).
std::string git_rev() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, pipe);
  const int rc = ::pclose(pipe);
  std::string rev(buf, n);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) rev.pop_back();
  return (rc == 0 && !rev.empty()) ? rev : "unknown";
}

// The FpdtConfig run_profile builds from these options — the snapshot's
// config identity string (one string per distinct executed behavior).
std::string canonical_of(const ProfileOptions& opt) {
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = opt.chunks;
  fcfg.offload = opt.offload;
  fcfg.double_buffer = opt.double_buffer;
  fcfg.stream_prefetch = opt.offload;
  fcfg.cache_forward_outputs = opt.cache_fwd;
  fcfg.ffn_chunk_multiplier = opt.ffn_chunk_multiplier;
  fcfg.lm_head_chunks = opt.lm_head_chunks;
  fcfg.zero_stage = opt.zero_stage;
  fcfg.kernel_backend = opt.kernel_backend;
  fcfg.ranks_per_node = opt.ranks_per_node;
  fcfg.head_degree = opt.head_degree;
  return fcfg.canonical();
}

// Profiles `opt` and folds the last step's stats into a suite row. Tracing
// is on (no files written) so the trainer's phase spans price embed/loss
// work into the virtual clock exactly as `fpdt profile` does.
BenchSuiteResult run_suite(std::string suite, ProfileOptions opt) {
  opt.trace = true;
  opt.trace_path.clear();
  opt.metrics_path.clear();
  const ProfileResult res = run_profile(opt);
  const StepStats& st = res.steps.back();

  BenchSuiteResult r;
  r.suite = std::move(suite);
  r.backend = opt.kernel_backend.empty() ? kernels::active_name() : opt.kernel_backend;
  r.config = canonical_of(opt);
  r.wall_s = st.wall_s;
  r.cpu_s = st.cpu_s;
  r.parallel_efficiency = st.parallel_efficiency;
  r.virtual_step_s = st.virtual_step_s;
  r.mfu = st.mfu;
  r.achieved_gbps = st.achieved_gbps;
  r.arith_intensity = st.arith_intensity;
  r.overlap_ratio = st.overlap_ratio;
  r.flops = st.flops;
  r.op_bytes = st.op_bytes;
  r.hbm_peak_bytes = st.hbm_peak_bytes;
  r.intra_link_bytes = st.intra_link_bytes;
  r.inter_link_bytes = st.inter_link_bytes;
  r.inter_bw_util = st.inter_bw_util;
  r.loss = st.loss;
  return r;
}

// Pinned suite configurations. Changing any knob here invalidates committed
// baselines — bump a new BENCH_<n>.json, don't edit an old one.
ProfileOptions attn_suite(std::uint64_t seed, int steps) {
  ProfileOptions o;
  o.model = nn::tiny_gpt(32, 1, 2, 64);  // narrow model, long chunks:
  o.chunks = 2;                          // attention's s^2 term dominates
  o.chunk_tokens = 256;
  o.world = 2;
  o.steps = steps;
  o.seed = seed;
  return o;
}

ProfileOptions gemm_suite(std::uint64_t seed, int steps) {
  ProfileOptions o;
  o.model = nn::tiny_gpt(128, 2, 4, 96);  // wide model, short sequence:
  o.chunks = 2;                           // projection/FFN GEMMs dominate
  o.chunk_tokens = 16;
  o.world = 2;
  o.steps = steps;
  o.seed = seed;
  return o;
}

ProfileOptions overlap_suite(std::uint64_t seed, int steps) {
  ProfileOptions o;  // default tiny model; the point is the streaming path
  o.chunks = 8;
  o.chunk_tokens = 64;
  o.world = 2;
  o.offload = true;
  o.double_buffer = true;
  o.steps = steps;
  o.seed = seed;
  return o;
}

// topo: the hierarchical-collective path — 4 ranks carved into 2 emulated
// nodes of 2, so every All2All runs the two-phase inter→intra decomposition
// and the link counters split. The loss must equal a flat 4-rank run of the
// same seed bitwise (the hierarchical group's payload contract); what this
// suite tracks is the routing's virtual-clock cost and link occupancy.
ProfileOptions topo_suite(std::uint64_t seed, int steps) {
  ProfileOptions o;  // default tiny model (4 heads)
  o.chunks = 4;
  o.chunk_tokens = 64;
  o.world = 4;
  o.ranks_per_node = 2;
  o.head_degree = 2;
  o.steps = steps;
  o.seed = seed;
  return o;
}

// tune-warm: wall/cpu time the *warm-cache* tune() call (a cold run first
// populates the cache), roofline fields from one profiled step of the
// winning configuration.
BenchSuiteResult tune_warm_suite(std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path cache = fs::temp_directory_path() / "fpdt_bench_tune_cache.json";
  std::error_code ec;
  fs::remove(cache, ec);  // start cold regardless of prior runs

  tune::TuneRequest req;
  req.world = 2;
  req.s_global = 512;
  req.steps = 1;
  req.seed = seed;
  req.top_k = 2;
  req.cache_path = cache.string();
  // Small pinned grid: the suite times cache replay, not the search.
  req.space.chunks_per_rank = {2, 4};
  req.space.zero_stages = {0};
  req.space.ffn_chunk_multipliers = {1};
  req.space.offload = {true};
  req.space.double_buffer = {true};
  req.space.cache_fwd = {true};

  (void)tune::tune(req);  // cold: executes and persists the cache

  const auto wall_begin = std::chrono::steady_clock::now();
  const std::clock_t cpu_begin = std::clock();
  const tune::TuneReport warm = tune::tune(req);  // warm: pure cache replay
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();
  const double cpu_s =
      static_cast<double>(std::clock() - cpu_begin) / static_cast<double>(CLOCKS_PER_SEC);
  fs::remove(cache, ec);

  ProfileOptions o;
  o.world = req.world;
  o.steps = 1;
  o.seed = seed;
  if (warm.winner >= 0) {
    const core::FpdtConfig win = warm.winning_config();
    o.chunks = win.chunks_per_rank;
    o.offload = win.offload;
    o.double_buffer = win.double_buffer;
    o.cache_fwd = win.cache_forward_outputs;
    o.ffn_chunk_multiplier = win.ffn_chunk_multiplier;
    o.lm_head_chunks = win.lm_head_chunks;
    o.zero_stage = win.zero_stage;
  }
  o.chunk_tokens = req.s_global / (static_cast<std::int64_t>(req.world) * o.chunks);
  BenchSuiteResult r = run_suite("tune-warm", o);
  r.wall_s = wall_s;  // the warm tune() call, not the follow-up profile
  r.cpu_s = cpu_s;
  return r;
}

int next_snapshot_number(const std::string& dir) {
  namespace fs = std::filesystem;
  int max_n = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    int n = 0;
    if (std::sscanf(name.c_str(), "BENCH_%d.json", &n) == 1) max_n = std::max(max_n, n);
  }
  return max_n + 1;
}

}  // namespace

std::string BenchReport::json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"schema\":\"" << json_escape(schema) << "\",\"git_rev\":\"" << json_escape(git_rev)
     << "\",\"world\":" << world << ",\"threads\":" << threads
     << ",\"avx2\":" << (avx2 ? "true" : "false") << ",\"suites\":[";
  bool first = true;
  for (const BenchSuiteResult& r : suites) {
    if (!first) os << ",";
    first = false;
    os << "{\"suite\":\"" << json_escape(r.suite) << "\",\"backend\":\"" << json_escape(r.backend)
       << "\",\"config\":\"" << json_escape(r.config) << "\",\"wall_s\":" << finite(r.wall_s)
       << ",\"cpu_s\":" << finite(r.cpu_s)
       << ",\"parallel_efficiency\":" << finite(r.parallel_efficiency)
       << ",\"virtual_step_s\":" << finite(r.virtual_step_s) << ",\"mfu\":" << finite(r.mfu)
       << ",\"achieved_gbps\":" << finite(r.achieved_gbps)
       << ",\"arith_intensity\":" << finite(r.arith_intensity)
       << ",\"overlap\":" << finite(r.overlap_ratio) << ",\"flops\":" << r.flops
       << ",\"op_bytes\":" << r.op_bytes << ",\"peak_hbm\":" << r.hbm_peak_bytes
       << ",\"intra_link_bytes\":" << r.intra_link_bytes
       << ",\"inter_link_bytes\":" << r.inter_link_bytes
       << ",\"inter_bw_util\":" << finite(r.inter_bw_util)
       << ",\"loss\":" << finite(r.loss) << "}";
  }
  os << "]}";
  return os.str();
}

std::string BenchReport::table() const {
  TextTable t({"suite", "backend", "mfu", "gbps", "intensity", "overlap", "virtual_s", "cpu_s",
               "wall_s", "par_eff", "inter_util"});
  for (const BenchSuiteResult& r : suites) {
    t.add_row({r.suite, r.backend, cell_pct(r.mfu), cell_f2(r.achieved_gbps),
               cell_f2(r.arith_intensity), cell_pct(r.overlap_ratio),
               format_seconds(r.virtual_step_s), format_seconds(r.cpu_s),
               format_seconds(r.wall_s), cell_pct(r.parallel_efficiency),
               r.inter_link_bytes > 0 ? cell_pct(r.inter_bw_util) : "-"});
  }
  std::ostringstream os;
  os << "fpdt bench — schema " << schema << ", rev " << git_rev << ", threads " << threads
     << (avx2 ? ", avx2" : ", no-avx2") << "\n";
  t.print(os);
  return os.str();
}

BenchReport run_bench(const BenchOptions& opt, std::string* report_path) {
  BenchReport rep;
  rep.git_rev = git_rev();
  rep.world = 2;
  rep.threads = parallel_workers();
  rep.avx2 = kernels::simd_uses_avx2();

  const std::vector<std::string> backends =
      opt.all_backends ? kernels::available() : std::vector<std::string>{kernels::active_name()};
  for (const std::string& kb : backends) {
    ProfileOptions a = attn_suite(opt.seed, opt.steps);
    a.kernel_backend = kb;
    rep.suites.push_back(run_suite("attn", a));
    ProfileOptions g = gemm_suite(opt.seed, opt.steps);
    g.kernel_backend = kb;
    rep.suites.push_back(run_suite("gemm", g));
    ProfileOptions ov = overlap_suite(opt.seed, opt.steps);
    ov.kernel_backend = kb;
    rep.suites.push_back(run_suite("overlap", ov));
    ProfileOptions tp = topo_suite(opt.seed, opt.steps);
    tp.kernel_backend = kb;
    rep.suites.push_back(run_suite("topo", tp));
  }
  // One tune-warm row on the process-default backend: the suite measures
  // cache replay, which is backend-independent.
  rep.suites.push_back(tune_warm_suite(opt.seed));

  if (!opt.out_dir.empty()) {
    std::filesystem::create_directories(opt.out_dir);
    char name[32];
    std::snprintf(name, sizeof(name), "BENCH_%04d.json", next_snapshot_number(opt.out_dir));
    const std::string path = (std::filesystem::path(opt.out_dir) / name).string();
    std::ofstream out(path);
    out << rep.json() << "\n";
    FPDT_CHECK(out.good()) << " cannot write bench snapshot to " << path;
    if (report_path != nullptr) *report_path = path;
  }
  return rep;
}

// ---- Shared analytic accounting -------------------------------------------

ModelWork analytic_model_work(const nn::ModelConfig& cfg, std::int64_t s, bool causal) {
  using namespace fpdt::kernels;
  const std::int64_t d = cfg.d_model;
  const std::int64_t f = cfg.ffn_hidden;
  const std::int64_t kv_dim = cfg.n_kv_head * cfg.head_dim();
  const bool llama = cfg.arch == nn::Arch::kLlama;

  // Per-call costs stay within int64 (the largest single op here, the 70B
  // LM head at 4M tokens, is ~1e16 FLOPs); the model total can exceed it,
  // so accumulation is double.
  ModelWork w;
  const auto add = [&w](OpWork op, double times = 1.0) {
    w.flops += times * static_cast<double>(op.flops);
    w.bytes += times * static_cast<double>(op.bytes);
  };

  // One transformer block, forward. Backward gemms charge 2x forward (dgrad
  // dX = dY·W plus wgrad dW = Xᵀ·dY, each the forward's FLOP count).
  const AttnDims dm{s, s, cfg.n_head, cfg.n_kv_head, cfg.head_dim(),
                    cfg.n_head / cfg.n_kv_head};
  const double L = static_cast<double>(cfg.n_layer);

  // Norms: 2 per block, fwd + bwd.
  if (llama) {
    add(rmsnorm_forward_cost(s, d), 2.0 * L);
    add(rmsnorm_backward_cost(s, d), 2.0 * L);
  } else {
    add(layernorm_forward_cost(s, d), 2.0 * L);
    add(layernorm_backward_cost(s, d), 2.0 * L);
  }
  // QKV + output projections (fwd 1x, bwd 2x).
  add(gemm_nt_cost(s, d, d + 2 * kv_dim), 3.0 * L);
  add(gemm_nt_cost(s, d, d), 3.0 * L);
  // Attention core.
  add(attn_forward_cost(dm, causal, 0, 0), L);
  add(online_attn_backward_step_cost(dm, causal, 0, 0), L);
  // FFN: GPT d->f, gelu, f->d; Llama gate+up d->2f, silu*mul, down f->d.
  if (llama) {
    add(gemm_nt_cost(s, d, 2 * f), 3.0 * L);
    add(gemm_nt_cost(s, f, d), 3.0 * L);
    add(activation_forward_cost(s * f, kSiluFwdFlopsPerElem), L);
    add(activation_backward_cost(s * f, kSiluBwdFlopsPerElem), L);
  } else {
    add(gemm_nt_cost(s, d, f), 3.0 * L);
    add(gemm_nt_cost(s, f, d), 3.0 * L);
    add(activation_forward_cost(s * f, kGeluFwdFlopsPerElem), L);
    add(activation_backward_cost(s * f, kGeluBwdFlopsPerElem), L);
  }
  // Final norm + untied LM head (embedding lookups are copies, not FLOPs).
  if (llama) {
    add(rmsnorm_forward_cost(s, d));
    add(rmsnorm_backward_cost(s, d));
  } else {
    add(layernorm_forward_cost(s, d));
    add(layernorm_backward_cost(s, d));
  }
  add(gemm_nt_cost(s, d, cfg.vocab), 3.0);
  return w;
}

bool accounting_consistent(const nn::ModelConfig& cfg, std::int64_t s, double* ratio) {
  const double per_op = analytic_model_work(cfg, s, /*causal=*/false).flops;
  const double convention = cfg.train_flops_per_token(s) * static_cast<double>(s);
  const double r = convention > 0.0 ? per_op / convention : 0.0;
  if (ratio != nullptr) *ratio = r;
  return r > 0.85 && r < 1.30;
}

}  // namespace fpdt::obs
