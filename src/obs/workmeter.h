// Work accounting for the math-kernel dispatch layer.
//
// Every call that reaches a kernels::Backend is charged an *analytic* FLOP
// and byte cost computed purely from its shapes (kernels/op_cost.h), never
// from what the backend actually executes — so the scalar reference and the
// SIMD backend report bit-identical integer work for the same call sequence,
// and the counters measure algorithmic work, not implementation effort.
// Dividing these counts by the sim::hardware peak-compute / bandwidth model
// yields MFU, achieved GB/s and arithmetic intensity (the roofline numbers
// the paper reports in Figs. 1/11); obs::StepProfiler does that per step and
// `fpdt bench` snapshots it into BENCH_<n>.json.
//
// Attribution: totals are kept per op kind (gemm / attention / softmax /
// norm / activation) and per *phase*. A phase is an interned name installed
// by the existing FPDT_TRACE_SCOPE(kCatPhase, ...) spans — obs::TraceScope
// interns the name and tags the thread via common/logging's thread-local
// work-phase id, which parallel_for_ranks propagates into rank workers — so
// the breakdown matches the tracer's phase vocabulary (embed /
// blocks.forward / loss_head / blocks.backward / embed.backward /
// optimizer) with id 0 = "unattributed".
//
// Cost discipline (same contract as the tracer): every charge site first
// checks work_metering_enabled() — one relaxed atomic load — so a disabled
// meter adds a predicted-not-taken branch per kernel call, no allocation,
// no locking, and never perturbs the math (metering has no side effects on
// computation either way). Enabled charges are lock-free relaxed atomic
// adds on preallocated slots; phase interning (the only locking path) runs
// once per new phase name, outside any kernel.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace fpdt::obs {

// Taxonomy of metered primitives: one kind per kernels::Backend op family.
enum class OpKind : int {
  kGemm = 0,        // gemm_nn_acc / gemm_nt / gemm_tn_acc
  kAttention = 1,   // attn_forward / online_attn_step / online_attn_backward_step
  kSoftmax = 2,     // softmax_rows
  kNorm = 3,        // layernorm / rmsnorm fwd+bwd
  kActivation = 4,  // gelu / silu fwd+bwd
};
inline constexpr int kOpKinds = 5;
const char* op_kind_name(OpKind kind);

// Analytic work of one kernel call. Integer on purpose: the formulas in
// kernels/op_cost.h are exact integer arithmetic over shapes, so equality
// across backends is bitwise, not within-tolerance.
struct OpWork {
  std::int64_t flops = 0;
  std::int64_t bytes = 0;

  OpWork& operator+=(const OpWork& o) {
    flops += o.flops;
    bytes += o.bytes;
    return *this;
  }
};

// Global enable flag, mirroring obs::g_trace_enabled: kept outside the
// Workmeter so the disabled check is one relaxed atomic load.
extern std::atomic<bool> g_work_meter_enabled;
inline bool work_metering_enabled() {
  return g_work_meter_enabled.load(std::memory_order_relaxed);
}

// Cumulative totals per op kind and per phase. Snapshots are additive:
// subtract an earlier snapshot from a later one for a window's work.
struct WorkSnapshot {
  OpWork kind[kOpKinds] = {};
  std::int64_t calls[kOpKinds] = {};
  // phase name -> work charged while that phase tag was installed
  // ("unattributed" for charges outside any phase span).
  std::map<std::string, OpWork> phase;

  std::int64_t total_flops() const;
  std::int64_t total_bytes() const;

  // Component-wise this - base (phases missing from base count from zero).
  WorkSnapshot since(const WorkSnapshot& base) const;
};

class Workmeter {
 public:
  static Workmeter& instance();

  // Enables/disables charging process-wide (affects work_metering_enabled()).
  void set_enabled(bool on);

  // Charges one kernel call's analytic work to (kind, current thread's
  // phase). Call sites must be gated on work_metering_enabled().
  void charge(OpKind kind, OpWork work);

  // Interns a phase name to a stable id for WorkPhaseTag (id 0 =
  // "unattributed"; capacity overflow folds into 0 rather than failing).
  int intern_phase(const std::string& name);

  WorkSnapshot snapshot() const;

  // Zeroes every accumulator (interned phase ids stay valid).
  void reset();

 private:
  // Generous fixed capacity: the trainer vocabulary is ~7 phases; slots are
  // preallocated so charge() never allocates.
  static constexpr int kMaxPhases = 32;

  struct Cell {
    std::atomic<std::int64_t> flops{0};
    std::atomic<std::int64_t> bytes{0};
    std::atomic<std::int64_t> calls{0};
  };

  Workmeter() = default;

  Cell cells_[kMaxPhases][kOpKinds];

  mutable std::mutex phase_mutex_;
  std::map<std::string, int> phase_ids_;  // name -> 1..kMaxPhases-1
};

// RAII phase tag by name: interns once, installs the thread-local id via
// common/logging so charges (on this thread and on parallel_for_ranks
// workers it forks) attribute here. Constructing with metering disabled
// still installs the tag — it is two int stores — so a meter enabled
// mid-step attributes correctly.
class MeterPhase {
 public:
  explicit MeterPhase(const std::string& name);
  ~MeterPhase();

  MeterPhase(const MeterPhase&) = delete;
  MeterPhase& operator=(const MeterPhase&) = delete;

 private:
  int prev_;
};

}  // namespace fpdt::obs
