#include "obs/workmeter.h"

#include "common/logging.h"

namespace fpdt::obs {

std::atomic<bool> g_work_meter_enabled{false};

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kGemm:
      return "gemm";
    case OpKind::kAttention:
      return "attention";
    case OpKind::kSoftmax:
      return "softmax";
    case OpKind::kNorm:
      return "norm";
    case OpKind::kActivation:
      return "activation";
  }
  return "?";
}

std::int64_t WorkSnapshot::total_flops() const {
  std::int64_t t = 0;
  for (int k = 0; k < kOpKinds; ++k) t += kind[k].flops;
  return t;
}

std::int64_t WorkSnapshot::total_bytes() const {
  std::int64_t t = 0;
  for (int k = 0; k < kOpKinds; ++k) t += kind[k].bytes;
  return t;
}

WorkSnapshot WorkSnapshot::since(const WorkSnapshot& base) const {
  WorkSnapshot d;
  for (int k = 0; k < kOpKinds; ++k) {
    d.kind[k].flops = kind[k].flops - base.kind[k].flops;
    d.kind[k].bytes = kind[k].bytes - base.kind[k].bytes;
    d.calls[k] = calls[k] - base.calls[k];
  }
  for (const auto& [name, work] : phase) {
    OpWork w = work;
    const auto it = base.phase.find(name);
    if (it != base.phase.end()) {
      w.flops -= it->second.flops;
      w.bytes -= it->second.bytes;
    }
    if (w.flops != 0 || w.bytes != 0) d.phase[name] = w;
  }
  return d;
}

Workmeter& Workmeter::instance() {
  static Workmeter m;
  return m;
}

void Workmeter::set_enabled(bool on) {
  g_work_meter_enabled.store(on, std::memory_order_relaxed);
}

void Workmeter::charge(OpKind kind, OpWork work) {
  int phase = current_work_phase();
  if (phase < 0 || phase >= kMaxPhases) phase = 0;
  Cell& cell = cells_[phase][static_cast<int>(kind)];
  cell.flops.fetch_add(work.flops, std::memory_order_relaxed);
  cell.bytes.fetch_add(work.bytes, std::memory_order_relaxed);
  cell.calls.fetch_add(1, std::memory_order_relaxed);
}

int Workmeter::intern_phase(const std::string& name) {
  std::lock_guard<std::mutex> lock(phase_mutex_);
  const auto it = phase_ids_.find(name);
  if (it != phase_ids_.end()) return it->second;
  const int next = static_cast<int>(phase_ids_.size()) + 1;  // 0 is reserved
  if (next >= kMaxPhases) return 0;  // overflow folds into "unattributed"
  phase_ids_[name] = next;
  return next;
}

WorkSnapshot Workmeter::snapshot() const {
  // Copy the (few) interned names under the lock, then read the lock-free
  // counters. Relaxed loads: a snapshot taken while kernels run is a
  // momentary view, same contract as MetricsRegistry::snapshot().
  std::map<std::string, int> names;
  {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    names = phase_ids_;
  }
  WorkSnapshot s;
  for (int p = 0; p < kMaxPhases; ++p) {
    for (int k = 0; k < kOpKinds; ++k) {
      const Cell& cell = cells_[p][k];
      OpWork w{cell.flops.load(std::memory_order_relaxed),
               cell.bytes.load(std::memory_order_relaxed)};
      if (w.flops == 0 && w.bytes == 0) continue;
      s.kind[k] += w;
      s.calls[k] += cell.calls.load(std::memory_order_relaxed);
      std::string phase_name = "unattributed";
      for (const auto& [name, id] : names) {
        if (id == p) {
          phase_name = name;
          break;
        }
      }
      s.phase[phase_name] += w;
    }
  }
  return s;
}

void Workmeter::reset() {
  for (int p = 0; p < kMaxPhases; ++p) {
    for (int k = 0; k < kOpKinds; ++k) {
      cells_[p][k].flops.store(0, std::memory_order_relaxed);
      cells_[p][k].bytes.store(0, std::memory_order_relaxed);
      cells_[p][k].calls.store(0, std::memory_order_relaxed);
    }
  }
}

MeterPhase::MeterPhase(const std::string& name)
    : prev_(current_work_phase()) {
  set_current_work_phase(Workmeter::instance().intern_phase(name));
}

MeterPhase::~MeterPhase() { set_current_work_phase(prev_); }

}  // namespace fpdt::obs
