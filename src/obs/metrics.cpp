#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/table.h"

namespace fpdt::obs {

void Histogram::observe(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  int bucket = 0;
  if (x >= 1.0) {
    bucket = std::min(kBuckets - 1, 1 + static_cast<int>(std::floor(std::log2(x))));
  }
  ++buckets_[bucket];
  if (samples_.size() < kMaxExactSamples) samples_.push_back(x);
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

std::vector<std::int64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::int64_t>(buckets_, buckets_ + kBuckets);
}

double Histogram::percentile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the smallest observation with at least ceil(q·count)
  // observations at or below it (rank 1 for q -> 0).
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_))));
  if (count_ <= static_cast<std::int64_t>(samples_.size())) {
    // Exact path: all observations retained.
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    return sorted[static_cast<std::size_t>(rank - 1)];
  }
  // Overflow fallback: linear interpolation inside the pow2 bucket holding
  // the rank, clamped to the observed extrema.
  std::int64_t seen = 0;
  for (int k = 0; k < kBuckets; ++k) {
    if (buckets_[k] == 0) continue;
    if (seen + buckets_[k] >= rank) {
      const double lo = k == 0 ? 0.0 : std::ldexp(1.0, k - 1);
      const double hi = k == 0 ? 1.0 : std::ldexp(1.0, k);
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(buckets_[k]);
      return std::clamp(lo + (hi - lo) * frac, min_, max_);
    }
    seen += buckets_[k];
  }
  return max_;
}

std::string Histogram::bucket_label(int k) {
  if (k <= 0) return "[0,1)";
  const auto bound = [](int exp) {
    // Exact integers stay readable up to 2^20; beyond that, power notation.
    return exp <= 20 ? std::to_string(1LL << exp) : "2^" + std::to_string(exp);
  };
  // The top bucket absorbs everything from 2^(kBuckets-2) up: its upper edge
  // is open, not 2^(kBuckets-1).
  if (k >= kBuckets - 1) return "[" + bound(kBuckets - 2) + ",+inf)";
  return "[" + bound(k - 1) + "," + bound(k) + ")";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.type = "counter";
    e.value = static_cast<double>(c->value());
    out.push_back(std::move(e));
  }
  for (const auto& [key, g] : gauges_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.type = "gauge";
    e.value = g->value();
    out.push_back(std::move(e));
  }
  for (const auto& [key, h] : histograms_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.type = "histogram";
    e.value = h->sum();
    e.count = h->count();
    e.min = h->min();
    e.max = h->max();
    e.mean = h->mean();
    e.p50 = h->percentile(0.50);
    e.p95 = h->percentile(0.95);
    e.p99 = h->percentile(0.99);
    const std::vector<std::int64_t> counts = h->buckets();
    for (int k = 0; k < Histogram::kBuckets; ++k) {
      if (counts[static_cast<std::size_t>(k)] != 0)
        e.hist_buckets.emplace_back(k, counts[static_cast<std::size_t>(k)]);
    }
    out.push_back(std::move(e));
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

// JSON has no NaN/Inf literals; degenerate values render as 0.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"metrics\":[";
  bool first = true;
  for (const Entry& e : snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"labels\":\"" << json_escape(e.labels)
       << "\",\"type\":\"" << e.type << "\"";
    if (e.type == "histogram") {
      os << ",\"count\":" << e.count << ",\"sum\":" << finite(e.value) << ",\"min\":"
         << finite(e.min) << ",\"max\":" << finite(e.max) << ",\"mean\":" << finite(e.mean)
         << ",\"p50\":" << finite(e.p50) << ",\"p95\":" << finite(e.p95)
         << ",\"p99\":" << finite(e.p99) << ",\"buckets\":[";
      bool bfirst = true;
      for (const auto& [k, n] : e.hist_buckets) {
        if (!bfirst) os << ",";
        bfirst = false;
        os << "{\"range\":\"" << Histogram::bucket_label(k) << "\",\"count\":" << n << "}";
      }
      os << "]";
    } else {
      os << ",\"value\":" << finite(e.value);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void MetricsRegistry::print_table(std::ostream& os) const {
  TextTable t({"metric", "labels", "type", "value", "count", "mean", "p50", "p95", "p99"});
  for (const Entry& e : snapshot()) {
    const bool h = e.type == "histogram";
    t.add_row({e.name, e.labels.empty() ? "-" : e.labels, e.type, cell_f2(e.value),
               h ? std::to_string(e.count) : "-", h ? cell_f2(e.mean) : "-",
               h ? cell_f2(e.p50) : "-", h ? cell_f2(e.p95) : "-", h ? cell_f2(e.p99) : "-"});
  }
  t.print(os);
}

}  // namespace fpdt::obs
