#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/table.h"

namespace fpdt::obs {

void Histogram::observe(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  int bucket = 0;
  if (x >= 1.0) {
    bucket = std::min(kBuckets - 1, 1 + static_cast<int>(std::floor(std::log2(x))));
  }
  ++buckets_[bucket];
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

std::vector<std::int64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::int64_t>(buckets_, buckets_ + kBuckets);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.type = "counter";
    e.value = static_cast<double>(c->value());
    out.push_back(std::move(e));
  }
  for (const auto& [key, g] : gauges_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.type = "gauge";
    e.value = g->value();
    out.push_back(std::move(e));
  }
  for (const auto& [key, h] : histograms_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.type = "histogram";
    e.value = h->sum();
    e.count = h->count();
    e.min = h->min();
    e.max = h->max();
    e.mean = h->mean();
    out.push_back(std::move(e));
  }
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

// JSON has no NaN/Inf literals; degenerate values render as 0.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"metrics\":[";
  bool first = true;
  for (const Entry& e : snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"labels\":\"" << json_escape(e.labels)
       << "\",\"type\":\"" << e.type << "\"";
    if (e.type == "histogram") {
      os << ",\"count\":" << e.count << ",\"sum\":" << finite(e.value) << ",\"min\":"
         << finite(e.min) << ",\"max\":" << finite(e.max) << ",\"mean\":" << finite(e.mean);
    } else {
      os << ",\"value\":" << finite(e.value);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void MetricsRegistry::print_table(std::ostream& os) const {
  TextTable t({"metric", "labels", "type", "value", "count", "mean"});
  for (const Entry& e : snapshot()) {
    t.add_row({e.name, e.labels.empty() ? "-" : e.labels, e.type, cell_f2(e.value),
               e.type == "histogram" ? std::to_string(e.count) : "-",
               e.type == "histogram" ? cell_f2(e.mean) : "-"});
  }
  t.print(os);
}

}  // namespace fpdt::obs
