// Typed metrics registry — counters, gauges and histograms with labels.
//
// The registry is the numeric companion of the tracer (obs/trace.h): where
// the tracer answers "when did it happen", the registry answers "how much,
// in total". Instruments are created on first use and keyed by
// (name, labels); labels are a canonical "k=v,k=v" string (e.g. "rank=0").
// References returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime, so hot paths can cache them.
//
// Thread-safety: instrument lookup is mutex-guarded; updates on an acquired
// instrument are atomic (counters/gauges) or mutex-guarded (histograms), so
// the emulated ranks can record from thread-pool workers.
//
// Renderers: json() for machine consumption (fpdt profile's metrics.json),
// print_table() for humans (reuses common/table.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fpdt::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Summary histogram: count/sum/min/max plus power-of-two magnitude buckets
// (bucket k counts observations in [2^(k-1), 2^k), with bucket 0 catching
// everything below 1 and the top bucket open-ended). Enough to see latency
// distributions without a full HDR structure.
//
// Percentiles: the first kMaxExactSamples observations are also retained
// verbatim, so percentile() is *exact* (nearest-rank over the sorted
// samples) for every realistic window in this repo — profiling runs record
// hundreds of observations, not millions. Past the cap the readout degrades
// to linear interpolation inside the pow2 bucket holding the rank (clamped
// to the observed min/max), which is the standard Prometheus-style
// estimate.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr std::size_t kMaxExactSamples = 1u << 16;

  void observe(double x);

  std::int64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;
  double mean() const;
  // Nearest-rank percentile, q in (0, 1] (0.5 = median); 0 when empty.
  double percentile(double q) const;
  std::vector<std::int64_t> buckets() const;

  // Human label of bucket k: "[0,1)", "[2^(k-1),2^k)" rendered with exact
  // integer bounds up to 2^20 then power notation, and an open "[2^62,+inf)"
  // for the top bucket (it has no finite upper edge).
  static std::string bucket_label(int k);

 private:
  mutable std::mutex mutex_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::int64_t buckets_[kBuckets] = {};
  std::vector<double> samples_;  // first kMaxExactSamples observations
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry used by the built-in instrumentation.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& labels = "");

  // Drops every instrument (references from before reset() dangle; only use
  // between measurement windows).
  void reset();

  struct Entry {
    std::string name;
    std::string labels;
    std::string type;  // "counter" | "gauge" | "histogram"
    double value = 0.0;       // counter/gauge value, histogram sum
    std::int64_t count = 0;   // histogram only
    double min = 0.0, max = 0.0, mean = 0.0;  // histogram only
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;   // histogram only
    // Non-empty pow2 buckets as (bucket index, count); histogram only.
    // Render indices with Histogram::bucket_label().
    std::vector<std::pair<int, std::int64_t>> hist_buckets;
  };
  std::vector<Entry> snapshot() const;

  // {"metrics":[{"name":...,"labels":...,"type":...,...}, ...]}
  std::string json() const;
  void print_table(std::ostream& os) const;

 private:
  using Key = std::pair<std::string, std::string>;

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fpdt::obs
