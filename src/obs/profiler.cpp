#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/baseline_trainer.h"
#include "parallel/grid2d.h"
#include "parallel/zero/sharded_optimizer.h"
#include "sim/runtime_bridge.h"

namespace fpdt::obs {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// JSON has no NaN/Inf literals; degenerate values render as 0.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

std::string phase_of(const std::string& label) {
  // Fault-injection retry backoffs ("retry.fetch.k.0.1", "retry.all_reduce")
  // are their own phase, so recovery cost is visible in the breakdown.
  if (starts_with(label, "retry.")) return "retry";
  // Transfer spans keep their stream-of-origin identity.
  if (starts_with(label, "fetch.")) return "fetch";
  if (starts_with(label, "offload.")) return "offload";
  // Backward recompute spans classify with their forward counterparts.
  const std::string base = starts_with(label, "bwd.") ? label.substr(4) : label;
  if (starts_with(base, "proj") || starts_with(base, "qkv")) return "qkv";
  if (starts_with(base, "a2a")) return "all2all";
  if (starts_with(base, "attn")) return "attention";
  if (starts_with(base, "post") || starts_with(base, "ffn") || starts_with(base, "out_proj")) {
    return "ffn";
  }
  if (starts_with(base, "embed")) return "embed";
  if (starts_with(base, "loss")) return "loss";
  if (starts_with(base, "optimizer")) return "optimizer";
  return "other";
}

void StepStats::set_host_times(double wall, double cpu) {
  wall_s = wall;
  cpu_s = cpu;
  const double denom = wall * static_cast<double>(parallel_workers());
  parallel_efficiency = denom > 0.0 ? cpu / denom : 0.0;
}

std::string StepStats::json() const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"step\":" << step << ",\"tokens\":" << tokens << ",\"loss\":" << finite(loss)
     << ",\"virtual_step_s\":" << finite(virtual_step_s)
     << ",\"wall_s\":" << finite(wall_s) << ",\"cpu_s\":" << finite(cpu_s)
     << ",\"tokens_per_s\":" << finite(tokens_per_s)
     << ",\"compute_busy_s\":" << finite(compute_busy_s)
     << ",\"h2d_busy_s\":" << finite(h2d_busy_s) << ",\"d2h_busy_s\":" << finite(d2h_busy_s)
     << ",\"hidden_transfer_s\":" << finite(hidden_transfer_s)
     << ",\"exposed_transfer_s\":" << finite(exposed_transfer_s)
     << ",\"overlap_ratio\":" << finite(overlap_ratio) << ",\"h2d_bytes\":" << h2d_bytes
     << ",\"d2h_bytes\":" << d2h_bytes << ",\"all2all_bytes\":" << all2all_bytes
     << ",\"intra_link_bytes\":" << intra_link_bytes
     << ",\"inter_link_bytes\":" << inter_link_bytes
     << ",\"inter_bw_util\":" << finite(inter_bw_util)
     << ",\"hbm_peak_bytes\":" << hbm_peak_bytes
     << ",\"flops\":" << flops << ",\"op_bytes\":" << op_bytes
     << ",\"mfu\":" << finite(mfu) << ",\"achieved_gbps\":" << finite(achieved_gbps)
     << ",\"arith_intensity\":" << finite(arith_intensity)
     << ",\"parallel_efficiency\":" << finite(parallel_efficiency) << ",\"phase_s\":{";
  bool first = true;
  for (const auto& [phase, seconds] : phase_s) {
    if (!first) os << ",";
    first = false;
    os << "\"" << phase << "\":" << finite(seconds);
  }
  os << "},\"phase_flops\":{";
  first = true;
  for (const auto& [phase, f] : phase_flops) {
    if (!first) os << ",";
    first = false;
    os << "\"" << phase << "\":" << f;
  }
  os << "},\"phase_mfu\":{";
  first = true;
  for (const auto& [phase, m] : phase_mfu) {
    if (!first) os << ",";
    first = false;
    os << "\"" << phase << "\":" << finite(m);
  }
  os << "}}";
  return os.str();
}

StepProfiler::StepProfiler(core::FpdtEnv& env, sim::HardwareSpec hw)
    : env_(&env), hw_(hw) {}

void StepProfiler::begin_step() {
  env_->reset_stream_timelines();  // synchronizes first
  env_->reset_peaks();
  h2d_base_ = env_->device(0).transfers().h2d_bytes;
  d2h_base_ = env_->device(0).transfers().d2h_bytes;
  a2a_base_ = env_->pg().stats().all_to_all_bytes;
  link_base_ = env_->pg().link_stats();
  work_base_ = Workmeter::instance().snapshot();
}

StepStats StepProfiler::end_step(int step, std::int64_t tokens, double loss) {
  last_report_ = env_->timeline_report(0);  // synchronizes all of rank 0
  env_->synchronize_streams();              // ...and every other rank

  StepStats st;
  st.step = step;
  st.tokens = tokens;
  st.loss = loss;
  st.virtual_step_s = last_report_.makespan_s;
  st.tokens_per_s =
      st.virtual_step_s > 0.0 ? static_cast<double>(tokens) / st.virtual_step_s : 0.0;
  st.compute_busy_s = last_report_.compute_busy_s;
  st.h2d_busy_s = last_report_.h2d_busy_s;
  st.d2h_busy_s = last_report_.d2h_busy_s;
  st.hidden_transfer_s = last_report_.hidden_transfer_s;
  st.exposed_transfer_s = last_report_.exposed_transfer_s;
  st.overlap_ratio = last_report_.overlap_ratio();
  st.h2d_bytes = env_->device(0).transfers().h2d_bytes - h2d_base_;
  st.d2h_bytes = env_->device(0).transfers().d2h_bytes - d2h_base_;
  st.all2all_bytes = env_->pg().stats().all_to_all_bytes - a2a_base_;
  const topo::LinkStats link = env_->pg().link_stats();
  st.intra_link_bytes = link.intra_bytes - link_base_.intra_bytes;
  st.inter_link_bytes = link.inter_bytes - link_base_.inter_bytes;
  if (st.virtual_step_s > 0.0) {
    st.inter_bw_util =
        std::min(1.0, (link.inter_busy_s - link_base_.inter_busy_s) / st.virtual_step_s);
  }
  st.hbm_peak_bytes = env_->max_hbm_peak();
  for (const runtime::StreamSpan& s : env_->device(0).compute_stream().spans()) {
    st.phase_s[phase_of(s.label)] += s.duration();
  }
  for (const runtime::StreamSpan& s : env_->device(0).h2d_stream().spans()) {
    st.phase_s[phase_of(s.label)] += s.duration();
  }
  for (const runtime::StreamSpan& s : env_->device(0).d2h_stream().spans()) {
    st.phase_s[phase_of(s.label)] += s.duration();
  }

  // Work accounting: whole-group workmeter delta over the step, evaluated
  // against the per-device roofline (one device's share of the work over
  // the step's virtual makespan).
  const WorkSnapshot work = Workmeter::instance().snapshot().since(work_base_);
  st.flops = work.total_flops();
  st.op_bytes = work.total_bytes();
  const double world = static_cast<double>(env_->world());
  const sim::RooflinePoint roof = sim::roofline_eval(
      hw_, static_cast<double>(st.flops) / world, static_cast<double>(st.op_bytes) / world,
      st.virtual_step_s);
  st.mfu = roof.mfu;
  st.achieved_gbps = roof.achieved_gbps;
  st.arith_intensity = roof.intensity;
  const double step_peak_flops = st.virtual_step_s * world * hw_.peak_flops;
  for (const auto& [phase, w] : work.phase) {
    st.phase_flops[phase] = w.flops;
    if (step_peak_flops > 0.0)
      st.phase_mfu[phase] = static_cast<double>(w.flops) / step_peak_flops;
  }

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("steps").add(1);
  reg.counter("tokens").add(tokens);
  reg.histogram("step.virtual_s").observe(st.virtual_step_s);
  reg.histogram("step.tokens_per_s").observe(st.tokens_per_s);
  reg.counter("transfer.h2d_bytes", "rank=0").add(st.h2d_bytes);
  reg.counter("transfer.d2h_bytes", "rank=0").add(st.d2h_bytes);
  reg.counter("comm.all2all_bytes").add(st.all2all_bytes);
  if (st.intra_link_bytes > 0 || st.inter_link_bytes > 0) {
    reg.counter("comm.intra_link_bytes").add(st.intra_link_bytes);
    reg.counter("comm.inter_link_bytes").add(st.inter_link_bytes);
    reg.gauge("comm.inter_bw_util").set(st.inter_bw_util);
  }
  reg.gauge("hbm.peak_bytes").set(static_cast<double>(st.hbm_peak_bytes));
  reg.gauge("overlap.ratio", "rank=0").set(st.overlap_ratio);
  reg.gauge("transfer.hidden_s", "rank=0").set(st.hidden_transfer_s);
  reg.gauge("transfer.exposed_s", "rank=0").set(st.exposed_transfer_s);
  for (const auto& [phase, seconds] : st.phase_s) {
    reg.histogram("phase.seconds", "phase=" + phase).observe(seconds);
  }
  if (st.flops > 0) {
    reg.histogram("step.mfu").observe(st.mfu);
    reg.histogram("step.achieved_gbps").observe(st.achieved_gbps);
    reg.gauge("roofline.intensity").set(st.arith_intensity);
    reg.counter("work.flops").add(st.flops);
    reg.counter("work.bytes").add(st.op_bytes);
    for (int k = 0; k < kOpKinds; ++k) {
      if (work.kind[k].flops == 0) continue;
      const std::string labels = std::string("kind=") + op_kind_name(static_cast<OpKind>(k));
      reg.counter("work.flops", labels).add(work.kind[k].flops);
      reg.counter("work.calls", labels).add(work.calls[k]);
    }
    for (const auto& [phase, m] : st.phase_mfu) {
      reg.gauge("phase.mfu", "phase=" + phase).set(m);
    }
  }
  // Perfetto counter tracks on rank 0's clock (now = end of step): one
  // sample per step, so the trace shows the MFU/bandwidth trajectory next
  // to the spans that produced it.
  if (tracing_enabled() && st.flops > 0) {
    Tracer& tracer = Tracer::instance();
    tracer.counter(kCatPerf, "mfu", 0, st.mfu);
    tracer.counter(kCatPerf, "achieved_gbps", 0, st.achieved_gbps);
    tracer.counter(kCatPerf, "arith_intensity", 0, st.arith_intensity);
    tracer.counter(kCatPerf, "step_tflops", 0, static_cast<double>(st.flops) / 1e12);
  }
  return st;
}

// ---- fpdt profile ----------------------------------------------------------

std::string ProfileResult::json(const ProfileOptions& opt) const {
  std::ostringstream os;
  os.precision(12);
  os << "{\"strategy\":\"" << opt.strategy << "\",\"model\":\"" << opt.model.name
     << "\",\"world\":" << opt.world << ",\"steps\":" << opt.steps
     << ",\"chunks\":" << opt.chunks << ",\"chunk_tokens\":" << opt.chunk_tokens
     << ",\"zero_stage\":" << opt.zero_stage << ",\"ranks_per_node\":" << opt.ranks_per_node
     << ",\"head_degree\":" << opt.head_degree << ",\"tokens_per_step\":" << tokens_per_step
     << ",\"final_loss\":" << finite(final_loss) << ",\"step_stats\":[";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) os << ",";
    os << steps[i].json();
  }
  os << "],\"registry\":" << MetricsRegistry::global().json() << "}";
  return os.str();
}

ProfileResult run_profile(const ProfileOptions& opt) {
  FPDT_CHECK_GE(opt.steps, 1) << " profile needs at least one step";
  FPDT_CHECK_GE(opt.world, 1) << " profile world size";

  // Select the math-kernel backend for the whole run (model init included);
  // restored on return. Empty = inherit the process default.
  kernels::BackendScope kernel_scope(opt.kernel_backend);

  Tracer& tracer = Tracer::instance();
  if (opt.trace) {
    tracer.clear();
    tracer.set_enabled(true);
  }
  MetricsRegistry::global().reset();
  // Work metering is on for every profile run: it is side-effect-free on the
  // math (analytic integer charges only) and feeds StepStats' MFU/roofline
  // fields. Reset so each run's deltas start from a clean meter.
  Workmeter& meter = Workmeter::instance();
  meter.reset();
  meter.set_enabled(true);

  const nn::ModelConfig cfg = opt.model;
  nn::Model model(cfg, opt.seed);
  const sim::CostModel cm(opt.hw, opt.world);
  const std::int64_t s_global = static_cast<std::int64_t>(opt.world) * opt.chunks *
                                opt.chunk_tokens;

  // Either trainer exposes the same FpdtEnv surface; keep both behind
  // pointers and a uniform step closure.
  std::unique_ptr<core::FpdtTrainer> fpdt;
  std::unique_ptr<parallel::BaselineTrainer> baseline;
  core::FpdtEnv* env = nullptr;
  if (opt.strategy == "fpdt") {
    core::FpdtConfig fcfg;
    fcfg.chunks_per_rank = opt.chunks;
    fcfg.offload = opt.offload;
    fcfg.double_buffer = opt.double_buffer;
    // A resident store migrates nothing; keep the stream engine off with it.
    fcfg.stream_prefetch = opt.offload;
    fcfg.cache_forward_outputs = opt.cache_fwd;
    fcfg.ffn_chunk_multiplier = opt.ffn_chunk_multiplier;
    fcfg.lm_head_chunks = opt.lm_head_chunks;
    fcfg.zero_stage = opt.zero_stage;
    fcfg.kernel_backend = opt.kernel_backend;
    fcfg.ranks_per_node = opt.ranks_per_node;
    fcfg.head_degree = opt.head_degree;
    // Fail fast on grid shapes the model cannot carry (head_degree must
    // divide the head count; Grid2D names the violated rule).
    parallel::Grid2D::from_config(fcfg, opt.world, cfg.n_head);
    fpdt = std::make_unique<core::FpdtTrainer>(model, opt.world, fcfg,
                                               opt.hbm_capacity_bytes);
    env = &fpdt->env();
  } else {
    parallel::BaselineKind kind;
    if (opt.strategy == "ulysses") {
      kind = parallel::BaselineKind::kUlysses;
    } else if (opt.strategy == "megatron-sp") {
      kind = parallel::BaselineKind::kMegatronSp;
    } else if (opt.strategy == "ring") {
      kind = parallel::BaselineKind::kRing;
    } else {
      if (opt.trace) tracer.set_enabled(false);
      meter.set_enabled(false);
      throw FpdtError("unknown profile strategy: " + opt.strategy +
                      " (try fpdt, ulysses, megatron-sp, ring)");
    }
    baseline = std::make_unique<parallel::BaselineTrainer>(
        model, opt.world, kind, opt.hbm_capacity_bytes, opt.zero_stage);
    env = &baseline->env();
  }
  env->set_stream_rates(sim::stream_rates(cm));

  std::int64_t n_params = 0;
  model.visit_params([&](nn::Param& p) { n_params += p.value.numel(); });

  // zero_stage >= 0 routes the update through the ZeRO sharded optimizer
  // (stage 0 delegates to the same replicated Adam, so every stage's loss
  // stays bit-identical to the seed path — tests/test_zero.cpp's contract).
  nn::Adam adam(1e-3);
  std::unique_ptr<zero::ShardedOptimizer> zopt;
  if (opt.zero_stage >= 0) {
    zopt = std::make_unique<zero::ShardedOptimizer>(*env, zero::ZeroConfig{opt.zero_stage});
  }
  data::SyntheticCorpus corpus(cfg.vocab, 7);
  StepProfiler profiler(*env, opt.hw);

  ProfileResult result;
  result.tokens_per_step = s_global;
  for (int step = 0; step < opt.steps; ++step) {
    const std::vector<std::int32_t> tokens = corpus.sample(s_global + 1);
    profiler.begin_step();
    const auto wall_begin = std::chrono::steady_clock::now();
    const std::clock_t cpu_begin = std::clock();
    const double loss = fpdt ? fpdt->train_step_grads(tokens)
                             : baseline->train_step_grads(tokens);
    const auto walk = [&](const nn::ParamVisitor& v) { model.visit_params(v); };
    if (zopt) {
      zopt->step(walk);
    } else {
      adam.step(walk);
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();
    const double cpu_s =
        static_cast<double>(std::clock() - cpu_begin) / static_cast<double>(CLOCKS_PER_SEC);
    // Model the optimizer sweep (~10 flops/param) as a compute-stream span
    // per rank so it shows in the step's timeline and phase breakdown.
    for (int r = 0; r < env->world(); ++r) {
      runtime::Device& dev = env->device(r);
      dev.compute_stream().enqueue("optimizer",
                                   dev.rates().gemm_time(10.0 * static_cast<double>(n_params)));
    }
    StepStats st = profiler.end_step(step, s_global, loss);
    st.set_host_times(wall_s, cpu_s);
    MetricsRegistry::global().gauge("host.parallel_efficiency").set(st.parallel_efficiency);
    if (opt.trace) {
      tracer.counter(kCatPerf, "parallel_efficiency", 0, st.parallel_efficiency);
    }
    result.steps.push_back(st);
    result.final_loss = loss;
  }

  meter.set_enabled(false);
  if (opt.trace && !opt.trace_path.empty()) tracer.write_chrome_trace(opt.trace_path);
  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    out << result.json(opt) << "\n";
    FPDT_CHECK(out.good()) << " cannot write metrics to " << opt.metrics_path;
  }
  if (opt.trace) tracer.set_enabled(false);
  return result;
}

}  // namespace fpdt::obs
