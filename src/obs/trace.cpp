#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "obs/workmeter.h"

namespace fpdt::obs {

std::atomic<bool> g_trace_enabled{false};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) { g_trace_enabled.store(on, std::memory_order_relaxed); }

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(capacity, 1);
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
  clocks_.clear();
}

void Tracer::push_locked(TraceEvent ev) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(ev));
}

void Tracer::complete(std::string category, std::string name, int rank, std::string track,
                      double start_s, double dur_s, double value, bool has_value) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kComplete;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.track = std::move(track);
  ev.rank = rank;
  ev.ts_s = start_s;
  ev.dur_s = dur_s;
  ev.value = value;
  ev.has_value = has_value;
  std::lock_guard<std::mutex> lock(mutex_);
  double& clock = clocks_[rank];
  clock = std::max(clock, start_s + dur_s);
  push_locked(std::move(ev));
}

void Tracer::instant(std::string category, std::string name, int rank, std::string track,
                     double value, bool has_value) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.track = std::move(track);
  ev.rank = rank;
  ev.value = value;
  ev.has_value = has_value;
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = clocks_.find(rank); it != clocks_.end()) ev.ts_s = it->second;
  push_locked(std::move(ev));
}

void Tracer::counter(std::string category, std::string name, int rank, double value,
                     int clock_rank) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kCounter;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.rank = rank;
  ev.value = value;
  ev.has_value = true;
  std::lock_guard<std::mutex> lock(mutex_);
  const int cr = clock_rank == kClockOfRank ? rank : clock_rank;
  if (auto it = clocks_.find(cr); it != clocks_.end()) ev.ts_s = it->second;
  push_locked(std::move(ev));
}

double Tracer::clock(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clocks_.find(rank);
  return it == clocks_.end() ? 0.0 : it->second;
}

void Tracer::advance_clock(int rank, double t) {
  std::lock_guard<std::mutex> lock(mutex_);
  double& clock = clocks_[rank];
  clock = std::max(clock, t);
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<TraceEvent>(events_.begin(), events_.end());
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

namespace {

// Minimal JSON string escape: the trace names are ASCII labels, but chunk
// keys and user scope names must not be able to break the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome trace pid for a rank: ranks map to themselves, node-level events
// (host pool) get a dedicated high pid so Perfetto shows a "node" process.
int pid_of(int rank) { return rank >= 0 ? rank : 9999; }

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> evs = events();

  // Stable tid assignment per (pid, track) so each stream gets its own lane.
  std::map<std::pair<int, std::string>, int> tids;
  auto tid_of = [&tids](int pid, const std::string& track) {
    const auto key = std::make_pair(pid, track);
    const auto it = tids.find(key);
    if (it != tids.end()) return it->second;
    const int tid = static_cast<int>(tids.size());
    tids.emplace(key, tid);
    return tid;
  };

  std::ostringstream os;
  os.precision(12);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const TraceEvent& ev : evs) {
    const int pid = pid_of(ev.rank);
    sep();
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\"" << json_escape(ev.category)
       << "\",\"pid\":" << pid;
    switch (ev.kind) {
      case TraceEvent::Kind::kComplete:
        os << ",\"tid\":" << tid_of(pid, ev.track) << ",\"ph\":\"X\",\"ts\":" << ev.ts_s * 1e6
           << ",\"dur\":" << ev.dur_s * 1e6;
        if (ev.has_value) os << ",\"args\":{\"value\":" << ev.value << "}";
        break;
      case TraceEvent::Kind::kInstant:
        os << ",\"tid\":" << tid_of(pid, ev.track) << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
           << ev.ts_s * 1e6;
        if (ev.has_value) os << ",\"args\":{\"value\":" << ev.value << "}";
        break;
      case TraceEvent::Kind::kCounter:
        os << ",\"tid\":0,\"ph\":\"C\",\"ts\":" << ev.ts_s * 1e6 << ",\"args\":{\""
           << json_escape(ev.name) << "\":" << ev.value << "}";
        break;
    }
    os << "}";
  }
  // Process/thread name metadata so Perfetto labels the lanes.
  std::map<int, bool> pids;
  for (const auto& [key, tid] : tids) pids[key.first] = true;
  for (const TraceEvent& ev : evs) pids[pid_of(ev.rank)] = true;
  for (const auto& [pid, unused] : pids) {
    (void)unused;
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (pid == pid_of(kNodeRank) ? std::string("node") : "rank " + std::to_string(pid))
       << "\"}}";
  }
  for (const auto& [key, tid] : tids) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first << ",\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(key.second) << "\"}}";
  }
  os << "]}";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  out << chrome_trace_json();
  FPDT_CHECK(out.good()) << " cannot write trace to " << path;
}

TraceScope::TraceScope(const char* category, const char* name, int rank) {
  // Work attribution first: a phase span tags the thread for the workmeter
  // whenever metering is on, regardless of whether a trace is recording.
  // strcmp (not pointer compare): callers may pass their own "phase" literal.
  if (work_metering_enabled() && std::strcmp(category, kCatPhase) == 0) {
    phase_tagged_ = true;
    prev_phase_ = current_work_phase();
    set_current_work_phase(Workmeter::instance().intern_phase(name));
  }
  if (!tracing_enabled()) return;
  active_ = true;
  category_ = category;
  name_ = name;
  rank_ = rank == kUseCurrentRank ? std::max(current_rank(), 0) : rank;
  start_ = Tracer::instance().clock(rank_);
}

TraceScope::~TraceScope() {
  if (phase_tagged_) set_current_work_phase(prev_phase_);
  if (!active_ || !tracing_enabled()) return;
  Tracer& tracer = Tracer::instance();
  const double end = tracer.clock(rank_);
  tracer.complete(category_, name_, rank_, "cpu", start_, std::max(0.0, end - start_));
}

}  // namespace fpdt::obs
