// `fpdt bench` — canonical perf-snapshot suite with a schema-versioned
// JSON artifact, the repo's perf trajectory currency (BENCH_<n>.json).
//
// Each suite is one pinned executed configuration profiled through
// obs::run_profile with work metering on, so every row carries the same
// numbers `fpdt profile` reports: virtual-clock MFU / achieved-GB/s /
// arithmetic intensity (deterministic, backend-invariant) next to host
// wall/cpu seconds (what a kernel backend actually changes). Compute
// suites run on every registered kernel backend; because work is charged
// analytically from shapes (kernels/op_cost.h), scalar and simd must
// report bit-identical FLOP/byte counts — ci/bench_smoke.sh gates on it.
//
// Suites:
//   attn       attention-dominated step (long chunks, small model width);
//   gemm       GEMM-dominated step (short sequence, wide FFN);
//   overlap    prefetch/offload overlap path (double-buffered streaming);
//   topo       hierarchical-collective path (2 emulated nodes x 2 ranks):
//              same math as a flat run, with traffic split across the
//              intra/inter link counters the schema-2 rows carry;
//   tune-warm  `fpdt tune` warm-cache path: a cold tune populates a result
//              cache, the timed run replays it warm; wall/cpu measure the
//              warm tune() call, the roofline fields come from one profiled
//              step of the winning configuration.
//
// Layering: needs run_profile (fpdt_profile) and tune() (fpdt_tune), so
// this lives in its own fpdt_bench library above both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model_config.h"

namespace fpdt::obs {

// Schema version of the snapshot document. Bump on any field change;
// ci/bench_smoke.sh refuses snapshots whose schema it does not know.
// Schema 2 added the per-link topology counters (intra/inter link bytes,
// inter-node bandwidth utilization) and the "topo" suite.
inline constexpr const char* kBenchSchema = "fpdt-bench/2";

// One (suite, backend) measurement.
struct BenchSuiteResult {
  std::string suite;    // attn | gemm | overlap | tune-warm
  std::string backend;  // kernel backend the math ran on
  std::string config;   // core::FpdtConfig::canonical() of the executed run

  // Host clocks (nondeterministic, machine-dependent).
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double parallel_efficiency = 0.0;

  // Virtual-clock measurements (deterministic for a pinned suite).
  double virtual_step_s = 0.0;
  double mfu = 0.0;
  double achieved_gbps = 0.0;
  double arith_intensity = 0.0;
  double overlap_ratio = 0.0;
  std::int64_t flops = 0;
  std::int64_t op_bytes = 0;
  std::int64_t hbm_peak_bytes = 0;
  // Per-link traffic under a topology-aware group (schema 2): zero for the
  // flat suites, split across both link classes for the "topo" suite.
  std::int64_t intra_link_bytes = 0;
  std::int64_t inter_link_bytes = 0;
  double inter_bw_util = 0.0;
  double loss = 0.0;
};

struct BenchReport {
  std::string schema = kBenchSchema;
  std::string git_rev = "unknown";
  int world = 0;
  int threads = 0;     // host thread-pool workers
  bool avx2 = false;   // simd backend dispatches real AVX2/FMA kernels
  std::vector<BenchSuiteResult> suites;

  std::string json() const;
  // Human TextTable: one row per (suite, backend).
  std::string table() const;
};

struct BenchOptions {
  int steps = 2;              // profiled steps per suite (last step reported)
  std::uint64_t seed = 1234;
  bool all_backends = true;   // false: active backend only (faster smoke)
  // Snapshot destination directory; the file name is BENCH_<n>.json with n
  // = 1 + the highest existing snapshot number in the directory. Empty =
  // don't write, return the report only.
  std::string out_dir;
};

// Runs the canonical suite; returns the report and (when out_dir is set)
// writes the auto-numbered snapshot, echoing the path via report_path.
BenchReport run_bench(const BenchOptions& opt, std::string* report_path = nullptr);

// ---- Shared analytic accounting -------------------------------------------

// Model-level work of ONE training step (forward + backward) of `cfg` over a
// sequence of `s` tokens, accumulated in double from the same per-op
// formulas (kernels/op_cost.h) the executed workmeter charges — embedding
// lookups excluded (no FLOPs), LM head included. This is the model-scale
// projection of the executed accounting: figure benches cross-check it
// against nn::ModelConfig::train_flops_per_token so the two conventions
// cannot silently drift (the Megatron convention does not discount the
// causal mask, so compare with causal=false).
struct ModelWork {
  double flops = 0.0;
  double bytes = 0.0;
};
ModelWork analytic_model_work(const nn::ModelConfig& cfg, std::int64_t s, bool causal);

// Pins the two accountings together on one shape: per-op FLOPs (non-causal,
// matching the convention's no-mask-discount) must land within [0.85, 1.30]
// of train_flops_per_token(s)·s — the conventions differ by design in the
// attention backward constant (10d+ε vs 8d) and the embedding lookup (a
// copy per-op, 6·vocab·d under 6N), so exact equality is wrong, but a
// formula regression in either shows up as a band violation. The figure
// benches assert this at startup; `ratio` (per-op / convention) is written
// when non-null.
bool accounting_consistent(const nn::ModelConfig& cfg, std::int64_t s, double* ratio = nullptr);

}  // namespace fpdt::obs
