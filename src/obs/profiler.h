// Step profiler — turns one executed training step into StepStats: the
// numbers the paper reports (tokens/s, per-phase latency, hidden vs exposed
// transfer time, HBM peak) measured on the emulated runtime's virtual
// clock, plus the glue that drives `fpdt profile`.
//
// Layering: obs/trace.h and obs/metrics.h depend only on common/ so every
// layer can be instrumented; this header is the opposite end — it *reads*
// the runtime (core::FpdtEnv, the trainers) and therefore lives in its own
// library (fpdt_profile) above fpdt_core and fpdt_parallel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/fpdt_env.h"
#include "nn/model_config.h"
#include "obs/workmeter.h"
#include "runtime/stream.h"
#include "sim/hardware.h"
#include "topo/topology.h"

namespace fpdt::obs {

// Coarse phase for a compute-stream span label (core/fpdt_block.cpp's
// vocabulary): "proj.3" / "bwd.qkv_proj.1" -> "qkv", "a2a_back.2" ->
// "all2all", "attn.1.0" -> "attention", "post.0" / "bwd.ffn.2" -> "ffn",
// "fetch.k3" -> "fetch", "offload.v1" -> "offload", plus the trainer-level
// "embed" / "loss" / "optimizer" spans. Unknown labels -> "other".
std::string phase_of(const std::string& label);

// One training step's worth of measurements, all on the virtual clock.
struct StepStats {
  int step = 0;
  std::int64_t tokens = 0;
  double loss = 0.0;
  double virtual_step_s = 0.0;  // rank-0 stream makespan
  double tokens_per_s = 0.0;    // tokens / virtual_step_s (0 when degenerate)
  double wall_s = 0.0;          // host wall-clock for the step (steady_clock).
                                // The virtual clock prices the *emulated*
                                // accelerator and is invariant to how fast
                                // the host math runs; wall_s/cpu_s are what
                                // the kernel backends actually change.
  double cpu_s = 0.0;           // host process-CPU for the step (std::clock,
                                // summed over threads). Immune to other
                                // processes on the machine, so this is what
                                // ci/kernel_smoke.sh gates its backend
                                // speedup ratio on; wall_s is reported too
                                // but loaded CI boxes make it noisy.
  double compute_busy_s = 0.0;
  double h2d_busy_s = 0.0;
  double d2h_busy_s = 0.0;
  double hidden_transfer_s = 0.0;
  double exposed_transfer_s = 0.0;
  double overlap_ratio = 0.0;
  std::int64_t h2d_bytes = 0;       // rank-0 traffic during the step
  std::int64_t d2h_bytes = 0;
  std::int64_t all2all_bytes = 0;   // whole-group All2All traffic
  // Per-link traffic of the step under a topology-aware group
  // (comm::HierarchicalProcessGroup); all zero under the seed's flat fabric.
  std::int64_t intra_link_bytes = 0;
  std::int64_t inter_link_bytes = 0;
  double inter_bw_util = 0.0;       // inter-link busy seconds / virtual_step_s
  std::int64_t hbm_peak_bytes = 0;  // max over ranks
  std::map<std::string, double> phase_s;  // phase -> rank-0 compute seconds

  // Work accounting (obs/workmeter.h deltas over the step; whole-group
  // totals — every rank charges the same process-wide meter). Zero when
  // metering was off for the step.
  std::int64_t flops = 0;     // analytic kernel FLOPs
  std::int64_t op_bytes = 0;  // analytic ideal kernel bytes
  // Roofline on the virtual clock, per device: flops / world is what one
  // emulated GPU did in virtual_step_s. Backend-invariant by construction
  // (both numerator and denominator are analytic/deterministic).
  double mfu = 0.0;              // (flops/world) / (virtual_step_s · peak_flops)
  double achieved_gbps = 0.0;    // (op_bytes/world) / virtual_step_s / 1e9
  double arith_intensity = 0.0;  // flops / op_bytes (FLOP/B)
  // Host-side parallel efficiency: cpu_s / (wall_s · thread-pool workers).
  // 1.0 = every worker fully busy for the whole step; set_host_times fills
  // it together with wall_s/cpu_s.
  double parallel_efficiency = 0.0;
  // Phase breakdown from the FPDT_TRACE_SCOPE(kCatPhase, ...) spans (embed /
  // blocks.forward / loss_head / ... vocabulary, distinct from phase_s's
  // stream-span classification). phase_mfu is the phase's *contribution* to
  // the step MFU (shares sum to the step total), not a per-phase roofline.
  std::map<std::string, std::int64_t> phase_flops;
  std::map<std::string, double> phase_mfu;

  void set_host_times(double wall, double cpu);

  std::string json() const;
};

// Brackets one training step: begin_step() opens a fresh measurement window
// (stream timelines, HBM peaks, transfer/comm baselines); end_step()
// synchronizes, builds the rank-0 TimelineReport, classifies compute spans
// into phases and folds everything into StepStats and the global
// MetricsRegistry. The overlap_ratio in StepStats *is*
// TimelineReport::overlap_ratio() — one source of truth.
class StepProfiler {
 public:
  // `hw` is the roofline denominator (peak FLOPs / HBM bandwidth); defaults
  // to the paper's A100-80G testbed, matching sim::stream_rates pricing.
  explicit StepProfiler(core::FpdtEnv& env, sim::HardwareSpec hw = sim::a100_80g_node());

  void begin_step();
  StepStats end_step(int step, std::int64_t tokens, double loss);

  const runtime::TimelineReport& last_report() const { return last_report_; }

 private:
  core::FpdtEnv* env_;
  sim::HardwareSpec hw_;
  std::int64_t h2d_base_ = 0;
  std::int64_t d2h_base_ = 0;
  std::int64_t a2a_base_ = 0;
  topo::LinkStats link_base_;
  WorkSnapshot work_base_;
  runtime::TimelineReport last_report_;
};

// ---- fpdt profile ----------------------------------------------------------

struct ProfileOptions {
  std::string strategy = "fpdt";  // fpdt | ulysses | megatron-sp | ring
  int steps = 2;
  int world = 2;
  std::int64_t chunks = 4;        // FPDT chunks per rank
  std::int64_t chunk_tokens = 64;
  std::uint64_t seed = 1234;
  bool trace = true;
  std::string trace_path = "trace.json";
  std::string metrics_path = "metrics.json";

  // Model under profile. Defaults to the tiny GPT every smoke/bench uses;
  // the tuner (src/tune/) passes its request's model through here.
  nn::ModelConfig model = nn::tiny_gpt(64, 2, 4, 96);

  // FPDT execution knobs forwarded into core::FpdtConfig (strategy "fpdt";
  // the defaults reproduce FpdtConfig's own defaults bit-for-bit).
  bool offload = true;
  bool double_buffer = true;
  bool cache_fwd = true;
  std::int64_t ffn_chunk_multiplier = 2;
  std::int64_t lm_head_chunks = 0;  // <= 0: the vocab/hidden*2 rule

  // ZeRO stage: -1 = seed behavior (replicated nn::Adam, no model-state
  // accounting); 0-3 attach the ZeroEngine and run the ShardedOptimizer, so
  // hbm_peak_bytes includes the stage's measured model-state residency.
  int zero_stage = -1;

  // Per-device HBM capacity in bytes; < 0 = unlimited (the default).
  std::int64_t hbm_capacity_bytes = -1;

  // Math-kernel backend ("scalar", "simd"); empty inherits the process
  // default (FPDT_KERNEL_BACKEND or "scalar"). Applied for the duration of
  // the profile run via kernels::BackendScope and restored afterwards.
  std::string kernel_backend;

  // Hardware preset pricing the run: roofline denominators and the stream
  // rates fed into the emulated devices (`--hw`, sim::hw_preset).
  sim::HardwareSpec hw = sim::a100_80g_node();

  // Topology / 2D-grid knobs forwarded into core::FpdtConfig (strategy
  // "fpdt"): ranks_per_node > 0 carving the world into > 1 full nodes routes
  // collectives through the hierarchical group; head_degree > 0 declares the
  // fast head axis of the 2D grid (validated against the model's head count
  // before the run starts). Payloads — and therefore losses — are bitwise
  // identical to the flat/1D defaults.
  int ranks_per_node = 0;
  int head_degree = 0;
};

struct ProfileResult {
  std::vector<StepStats> steps;
  double final_loss = 0.0;
  std::int64_t tokens_per_step = 0;

  // Full profile document: options echo, per-step stats, metrics registry
  // snapshot (what metrics.json holds).
  std::string json(const ProfileOptions& opt) const;
};

// Runs `opt.steps` training steps of a tiny model under the chosen strategy
// with tracing on, writes opt.trace_path (Chrome trace JSON) and
// opt.metrics_path, and returns the per-step stats. The tracer is restored
// to disabled afterwards. Empty paths skip the corresponding file.
ProfileResult run_profile(const ProfileOptions& opt);

}  // namespace fpdt::obs
