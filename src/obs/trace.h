// Structured tracing for the executed runtime — one virtual-time timeline
// per emulated node, exported as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing, one process per rank, one track per stream).
//
// The stream engine (runtime/stream.h) already resolves a deterministic
// virtual clock per device; the tracer merges those span ledgers with the
// chunk lifecycle (core/chunk_prefetcher.h), the collectives
// (comm/process_group.h) and the memory-pool occupancy samples
// (runtime/memory_pool.h) into a single event buffer:
//
//   complete  an interval [ts, ts+dur) on a (rank, track) lane — stream
//             spans, FPDT_TRACE_SCOPE regions;
//   instant   a point event — prefetch issue/retire, offload adoption,
//             collective calls (value = bytes moved per rank);
//   counter   a sampled value — HBM used+staged bytes, All2All bytes.
//
// Timestamps are *virtual seconds* from the per-rank clock, which advances
// as stream tasks drain (runtime::Stream adds a monotonic offset across
// reset_timeline() calls so multi-step traces stay ordered). Events emitted
// off-stream (scopes, collectives, pool samples) are stamped at the emitting
// rank's current clock. The emulated ranks fork across threads
// (common/thread_pool.h), so every entry point is mutex-guarded.
//
// Cost discipline: every instrumentation site is gated on tracing_enabled()
// — a relaxed atomic load compiling to a branch — so a disabled tracer adds
// no allocation, no locking and no formatting to any hot path, and never
// perturbs the bit-identical streamed-vs-sync guarantee (tracing has no side
// effects on computation either way). The buffer is a bounded ring: when
// full, the oldest events are dropped (dropped() reports how many).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace fpdt::obs {

// Categories used by the built-in instrumentation. Free-form strings are
// allowed; these are the lanes the acceptance tooling looks for.
inline constexpr const char* kCatStream = "stream";
inline constexpr const char* kCatChunk = "chunk";
inline constexpr const char* kCatComm = "comm";
inline constexpr const char* kCatMemory = "memory";
inline constexpr const char* kCatPhase = "phase";
inline constexpr const char* kCatPerf = "perf";  // roofline counter tracks (mfu, gbps, ...)

// Rank id for node-level (not per-rank) events, e.g. the shared host pool.
inline constexpr int kNodeRank = -1;

struct TraceEvent {
  enum class Kind { kComplete, kInstant, kCounter };
  Kind kind = Kind::kInstant;
  std::string category;
  std::string name;
  std::string track;  // lane within the rank's process ("compute", "h2d", ...)
  int rank = 0;       // kNodeRank for node-level events
  double ts_s = 0.0;
  double dur_s = 0.0;  // kComplete only
  double value = 0.0;  // kCounter always; kComplete/kInstant when has_value
  bool has_value = false;
};

// Global enable flag. Kept outside the Tracer so the disabled check is one
// relaxed atomic load, no function call, no lock.
extern std::atomic<bool> g_trace_enabled;
inline bool tracing_enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

class Tracer {
 public:
  static Tracer& instance();

  // Enables/disables event recording process-wide (affects tracing_enabled()).
  void set_enabled(bool on);

  // Ring capacity in events; when exceeded the oldest events are dropped.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  // Drops all buffered events, the dropped counter and the rank clocks.
  void clear();

  void complete(std::string category, std::string name, int rank, std::string track,
                double start_s, double dur_s, double value = 0.0, bool has_value = false);
  void instant(std::string category, std::string name, int rank, std::string track,
               double value = 0.0, bool has_value = false);
  // Counters are stamped at `clock_rank`'s current clock (defaults to `rank`;
  // pass the acting rank for node-level pools whose own rank is kNodeRank).
  void counter(std::string category, std::string name, int rank, double value,
               int clock_rank = kClockOfRank);

  // Per-rank virtual clock: the finish time of the last drained stream task.
  // advance_clock is monotonic (max of current and t).
  double clock(int rank) const;
  void advance_clock(int rank, double t);

  // Snapshot of the buffered events in emission order.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::size_t dropped() const;

  // Chrome trace-event JSON ("traceEvents" array form): pid = rank (node
  // events get their own process), tid = track, ts/dur in microseconds.
  std::string chrome_trace_json() const;
  // Writes chrome_trace_json() to `path`; throws FpdtError on I/O failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  static constexpr int kClockOfRank = INT32_MIN;

  Tracer() = default;
  void push_locked(TraceEvent ev);

  mutable std::mutex mutex_;
  std::deque<TraceEvent> events_;
  std::size_t capacity_ = 1u << 18;  // 262144 events
  std::size_t dropped_ = 0;
  std::unordered_map<int, double> clocks_;
};

// RAII span on the current rank's "cpu" track. The interval is measured on
// the rank's *virtual* clock, so its duration is the virtual time that
// drained through streams while the scope was open (0 for pure-CPU regions,
// which still leaves a nesting instant marker in the trace). Constructing
// with a disabled tracer is a branch and two stores — no strings, no lock.
//
// Phase spans (category == kCatPhase) double as work-attribution tags: when
// the workmeter is enabled the scope also interns its name and installs the
// thread-local work-phase id (common/logging.h), so kernel FLOPs dispatched
// under the span — including inside parallel_for_ranks workers — are charged
// to this phase. The tag is independent of the tracer: metering attributes
// correctly even when no trace is being recorded, and vice versa.
class TraceScope {
 public:
  TraceScope(const char* category, const char* name, int rank = kUseCurrentRank);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  static constexpr int kUseCurrentRank = INT32_MIN;

  bool active_ = false;
  bool phase_tagged_ = false;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  int rank_ = 0;
  int prev_phase_ = 0;
  double start_ = 0.0;
};

#define FPDT_TRACE_CONCAT_IMPL(a, b) a##b
#define FPDT_TRACE_CONCAT(a, b) FPDT_TRACE_CONCAT_IMPL(a, b)
// Zero-cost-when-disabled RAII trace span: category/name must be string
// literals (dynamic names should guard on fpdt::obs::tracing_enabled()).
#define FPDT_TRACE_SCOPE(category, name) \
  ::fpdt::obs::TraceScope FPDT_TRACE_CONCAT(fpdt_trace_scope_, __LINE__)(category, name)

}  // namespace fpdt::obs
