// Weak-scaling model: modeled step time of FPDT at 64–1024 ranks under a
// flat vs a hierarchical (2D sequence×head) communication routing, fed
// through sim::PipelineSim with topology-priced link resources.
//
// Both routings execute the *same* computation (identical FLOPs, identical
// chunk schedule); they differ only in where the collective traffic lands:
//
//   flat   the Ulysses All2All re-shards across all P ranks, so (P-R)/P of
//          every chunk's QKV/output payload crosses the node boundary and
//          contends for the shared HCA (per-flow bandwidth ib/R) on the
//          proj -> a2a -> attn critical path;
//   hier   the 2D grid (head axis = intra-node, sequence axis = inter-node,
//          per Untied Ulysses + DISTFLASHATTN): the head-dimension All2All
//          is confined to the fast intra-node fabric, and the sequence axis
//          streams KV shards ring-style over IB, double-buffered under the
//          (quadratic) attention compute of the previous shard.
//
// The model prices one transformer layer as a pipeline of compute / intra /
// inter resources and scales to a training step analytically (n_layer x
// forward+backward). Host offload traffic is identical in both routings and
// is omitted. Output: ScalingRow per world size, written to
// weak_scaling.csv by `fpdt topo` and gated by check_weak_scaling() — the
// shape contract ci/topo_smoke.sh enforces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model_config.h"
#include "topo/topology.h"

namespace fpdt::topo {

struct TopoModelOptions {
  nn::ModelConfig model;
  std::int64_t ctx_per_gpu = 32768;   // tokens per rank (weak scaling: fixed)
  // Chunk granularity. The §5.3 chunk-size floor applies to the routing
  // comparison too: the hier ring is fully hidden only when the *smallest*
  // causal chunk's attention covers its KV ring, i.e. roughly
  // ctx_per_gpu · ib_bw / (2u · peak · attn_eff) >= 1 — at the defaults
  // (32K ctx, 25 GB/s IB, A100) that caps u at 2. Finer chunks expose ring
  // hops under the first chunk and erode the hierarchical win.
  std::int64_t chunks_per_rank = 2;   // u
  double backward_multiplier = 2.0;   // bwd costs ~2x fwd (recompute-free)
};

// One routing's modeled step under a topology.
struct TopoEval {
  double step_s = 0.0;
  double mfu = 0.0;
  double layer_fwd_s = 0.0;     // pipeline makespan of one layer forward
  double intra_busy_s = 0.0;    // per-layer link busy time (per node)
  double inter_busy_s = 0.0;
  double inter_util = 0.0;      // inter_busy_s / layer_fwd_s
};

// Prices one step of `opt.model` at topo.world() ranks. `hierarchical`
// selects the routing; the flat routing still *crosses* topo's inter links
// (a flat group on a multi-node fleet cannot avoid them) — it just ignores
// the node structure when placing traffic.
TopoEval model_step(const Topology& topo, const sim::HardwareSpec& hw,
                    const TopoModelOptions& opt, bool hierarchical);

struct ScalingRow {
  int gpus = 0;
  int nodes = 0;
  std::int64_t seq_global = 0;
  double flat_step_s = 0.0;
  double hier_step_s = 0.0;
  double speedup = 0.0;  // flat_step_s / hier_step_s
  double flat_mfu = 0.0;
  double hier_mfu = 0.0;
  double flat_inter_util = 0.0;
  double hier_inter_util = 0.0;
};

// Doubling sweep ranks_lo..ranks_hi (inclusive when on the doubling grid),
// ranks-per-node from hw.gpus_per_node.
std::vector<ScalingRow> weak_scaling(const sim::HardwareSpec& hw, int ranks_lo, int ranks_hi,
                                     const TopoModelOptions& opt);

// CSV document (header + one row per world size).
std::string scaling_csv(const std::vector<ScalingRow>& rows);

// Shape contract over a weak-scaling sweep:
//   * at least one row; gpus strictly doubling; seq_global = gpus * ctx;
//   * every field finite and positive, MFU in (0, 1];
//   * hier_step_s < flat_step_s strictly on every multi-node row whenever
//     the inter-node link is slower than the intra-node link;
//   * speedup == flat_step_s / hier_step_s (internal consistency).
// Returns false and fills `why` on the first violation.
bool check_weak_scaling(const std::vector<ScalingRow>& rows, const sim::HardwareSpec& hw,
                        std::int64_t ctx_per_gpu, std::string* why);

}  // namespace fpdt::topo
