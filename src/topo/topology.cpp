#include "topo/topology.h"

#include <algorithm>
#include <sstream>

namespace fpdt::topo {

const char* link_class_name(LinkClass c) {
  switch (c) {
    case LinkClass::kSelf: return "self";
    case LinkClass::kIntra: return "intra";
    case LinkClass::kInter: return "inter";
  }
  return "unknown";
}

std::string LinkStats::to_string() const {
  std::ostringstream os;
  os << "intra " << intra_bytes << " B / " << intra_phases << " phase(s) / " << intra_busy_s
     << " s (peak " << max_intra_flows << " flow(s)); inter " << inter_bytes << " B / "
     << inter_phases << " phase(s) / " << inter_busy_s << " s (peak " << max_inter_flows
     << " flow(s))";
  return os.str();
}

Topology::Topology(int nodes, int ranks_per_node, LinkSpec intra, LinkSpec inter)
    : nodes_(nodes), ranks_per_node_(ranks_per_node), intra_(intra), inter_(inter) {
  FPDT_CHECK_GE(nodes, 1) << " topology nodes";
  FPDT_CHECK_GE(ranks_per_node, 1) << " topology ranks per node";
  FPDT_CHECK(intra_.bandwidth > 0 && inter_.bandwidth > 0) << " topology link bandwidth";
  FPDT_CHECK(intra_.capacity >= 1 && inter_.capacity >= 1) << " topology link capacity";
}

Topology Topology::flat(int world) {
  LinkSpec intra;
  intra.capacity = world;  // the seed's uniform fabric never contends
  return Topology(1, world, intra, LinkSpec{});
}

Topology Topology::grid(int nodes, int ranks_per_node, LinkSpec intra, LinkSpec inter) {
  return Topology(nodes, ranks_per_node, intra, inter);
}

Topology Topology::grid(int nodes, int ranks_per_node, const sim::HardwareSpec& hw) {
  LinkSpec intra;
  intra.bandwidth = hw.nvlink_bw;
  intra.latency_s = hw.nvlink_latency_s;
  // Switched NVLink: every GPU drives its own point-to-point lane.
  intra.capacity = ranks_per_node;
  LinkSpec inter;
  inter.bandwidth = hw.ib_bw;
  inter.latency_s = hw.ib_latency_s;
  inter.capacity = 1;  // one HCA per node, shared by all its GPUs
  return Topology(nodes, ranks_per_node, intra, inter);
}

Topology Topology::from_hardware(const sim::HardwareSpec& hw, int world) {
  FPDT_CHECK_GE(world, 1) << " topology world";
  int per_node = std::min(world, hw.gpus_per_node);
  while (per_node > 1 && world % per_node != 0) --per_node;
  return grid(world / per_node, per_node, hw);
}

int Topology::rank_of(int node, int local) const {
  FPDT_CHECK(node >= 0 && node < nodes_) << " topology node " << node;
  FPDT_CHECK(local >= 0 && local < ranks_per_node_) << " topology local ordinal " << local;
  return node * ranks_per_node_ + local;
}

LinkClass Topology::link(int src, int dst) const {
  if (src == dst) {
    check_rank(src);
    return LinkClass::kSelf;
  }
  return same_node(src, dst) ? LinkClass::kIntra : LinkClass::kInter;
}

std::vector<int> Topology::node_members(int node) const {
  FPDT_CHECK(node >= 0 && node < nodes_) << " topology node " << node;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(ranks_per_node_));
  for (int j = 0; j < ranks_per_node_; ++j) out.push_back(node * ranks_per_node_ + j);
  return out;
}

std::vector<int> Topology::cross_node_members(int local) const {
  FPDT_CHECK(local >= 0 && local < ranks_per_node_) << " topology local ordinal " << local;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(nodes_));
  for (int n = 0; n < nodes_; ++n) out.push_back(n * ranks_per_node_ + local);
  return out;
}

const LinkSpec& Topology::spec(LinkClass c) const {
  return c == LinkClass::kInter ? inter_ : intra_;
}

double Topology::phase_time(LinkClass c, std::int64_t bytes_per_flow, int flows) const {
  if (c == LinkClass::kSelf || bytes_per_flow <= 0 || flows <= 0) return 0.0;
  const LinkSpec& s = spec(c);
  const double share =
      flows <= s.capacity ? 1.0 : static_cast<double>(s.capacity) / static_cast<double>(flows);
  return static_cast<double>(bytes_per_flow) / (s.bandwidth * share) + s.latency_s;
}

std::string Topology::to_string() const {
  std::ostringstream os;
  os << nodes_ << "x" << ranks_per_node_ << " (intra " << intra_.bandwidth / 1e9
     << "GB/s cap " << intra_.capacity << ", inter " << inter_.bandwidth / 1e9 << "GB/s cap "
     << inter_.capacity << ")";
  return os.str();
}

}  // namespace fpdt::topo
