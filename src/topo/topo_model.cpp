#include "topo/topo_model.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "sim/cost_model.h"
#include "sim/pipeline_sim.h"

namespace fpdt::topo {

TopoEval model_step(const Topology& topo, const sim::HardwareSpec& hw,
                    const TopoModelOptions& opt, bool hierarchical) {
  const int P = topo.world();
  const int R = topo.ranks_per_node();
  const int N = topo.nodes();
  const nn::ModelConfig& m = opt.model;
  FPDT_CHECK_GE(m.n_layer, 1) << " topo model layers";
  const std::int64_t s_local = opt.ctx_per_gpu;
  const std::int64_t s_global = static_cast<std::int64_t>(P) * s_local;
  const std::int64_t u = std::max<std::int64_t>(1, opt.chunks_per_rank);
  const std::int64_t c_local = std::max<std::int64_t>(1, s_local / u);
  const double d = static_cast<double>(m.d_model);

  sim::CostModel cm(hw, P);

  // Per-rank, per-layer compute (FLOPs). The attention term is the causal
  // online-softmax total over the whole sequence with this rank's head
  // share — identical under both routings, because the 2D grid re-routes
  // the traffic, not the math.
  const double proj_flops = 8.0 * static_cast<double>(s_local) * d * d;
  const double ffn_flops =
      4.0 * static_cast<double>(s_local) * d * static_cast<double>(m.ffn_hidden);
  const double attn_flops =
      2.0 * static_cast<double>(s_global) * static_cast<double>(s_global) * d / P;

  // Per-chunk All2All payload per rank (QKV out + attention output return),
  // logical BF16 bytes — what the executed ProcessGroup charges per rank.
  const double a2a_chunk_bytes = 4.0 * static_cast<double>(c_local) * d * 2.0;

  sim::PipelineSim sim;
  const int rc = sim.add_resource("compute");
  const int ri = sim.add_resource("intra");
  const int rx = sim.add_resource("inter");

  for (std::int64_t q = 0; q < u; ++q) {
    const std::string qs = std::to_string(q);
    const int proj = sim.add_task(rc, cm.gemm_time(proj_flops / static_cast<double>(u)), {},
                                  "proj." + qs);
    // Causal chunk schedule: chunk q attends to (q + 1/2) chunks on average.
    const double attn_q =
        attn_flops * static_cast<double>(2 * q + 1) / static_cast<double>(u * u);
    std::int64_t attn_tail = -1;
    if (!hierarchical) {
      // Flat Ulysses re-shard: (R-1)/P of the payload stays on-node, the
      // rest funnels through the shared HCA — on the critical path.
      const auto intra_bytes =
          static_cast<std::int64_t>(a2a_chunk_bytes * (R - 1) / static_cast<double>(P));
      const auto inter_bytes =
          static_cast<std::int64_t>(a2a_chunk_bytes * (P - R) / static_cast<double>(P));
      std::vector<int> attn_deps;
      attn_deps.push_back(
          sim.add_task(ri, topo.phase_time(LinkClass::kIntra, intra_bytes, R), {proj},
                       "a2a.intra." + qs));
      if (inter_bytes > 0) {
        attn_deps.push_back(
            sim.add_task(rx, topo.phase_time(LinkClass::kInter, inter_bytes, R), {proj},
                         "a2a.inter." + qs));
      }
      attn_tail = sim.add_task(rc, cm.attn_time(attn_q), attn_deps, "attn." + qs);
    } else {
      // 2D grid: the head-dimension All2All never leaves the node; the
      // sequence axis ring-streams each node's new KV shard over IB,
      // overlapped with the per-shard attention compute.
      const auto intra_bytes =
          static_cast<std::int64_t>(a2a_chunk_bytes * (R - 1) / static_cast<double>(R));
      const int a2a = sim.add_task(ri, topo.phase_time(LinkClass::kIntra, intra_bytes, R),
                                   {proj}, "a2a.head." + qs);
      // Per-rank KV shard of this chunk from one remote node: 2 tensors of
      // R*c_local tokens at head width d/R, BF16.
      const auto kv_bytes = static_cast<std::int64_t>(
          2.0 * static_cast<double>(R) * static_cast<double>(c_local) * (d / R) * 2.0);
      int prev = a2a;
      for (int j = 0; j < N; ++j) {
        std::vector<int> deps{a2a, prev};
        if (j > 0) {
          deps.push_back(sim.add_task(rx, topo.phase_time(LinkClass::kInter, kv_bytes, R),
                                      {proj}, "kv.ring." + qs + "." + std::to_string(j)));
        }
        prev = sim.add_task(rc, cm.attn_time(attn_q / static_cast<double>(N)), deps,
                            "attn." + qs + "." + std::to_string(j));
      }
      attn_tail = prev;
    }
    sim.add_task(rc, cm.gemm_time(ffn_flops / static_cast<double>(u)),
                 {static_cast<int>(attn_tail)}, "ffn." + qs);
  }

  TopoEval ev;
  ev.layer_fwd_s = sim.run();
  ev.intra_busy_s = sim.resource_busy(ri);
  ev.inter_busy_s = sim.resource_busy(rx);
  ev.inter_util = ev.layer_fwd_s > 0.0 ? ev.inter_busy_s / ev.layer_fwd_s : 0.0;
  ev.step_s =
      static_cast<double>(m.n_layer) * ev.layer_fwd_s * (1.0 + opt.backward_multiplier);
  const double step_flops =
      m.train_flops_per_token(s_global) * static_cast<double>(s_global) / P;
  if (ev.step_s > 0.0) ev.mfu = step_flops / (ev.step_s * hw.peak_flops);
  return ev;
}

std::vector<ScalingRow> weak_scaling(const sim::HardwareSpec& hw, int ranks_lo, int ranks_hi,
                                     const TopoModelOptions& opt) {
  FPDT_CHECK_GE(ranks_lo, 1) << " weak scaling ranks";
  FPDT_CHECK_GE(ranks_hi, ranks_lo) << " weak scaling range";
  std::vector<ScalingRow> rows;
  for (std::int64_t w = ranks_lo; w <= ranks_hi; w *= 2) {
    const Topology topo = Topology::from_hardware(hw, static_cast<int>(w));
    const TopoEval flat = model_step(topo, hw, opt, /*hierarchical=*/false);
    const TopoEval hier = model_step(topo, hw, opt, /*hierarchical=*/true);
    ScalingRow row;
    row.gpus = static_cast<int>(w);
    row.nodes = topo.nodes();
    row.seq_global = w * opt.ctx_per_gpu;
    row.flat_step_s = flat.step_s;
    row.hier_step_s = hier.step_s;
    row.speedup = hier.step_s > 0.0 ? flat.step_s / hier.step_s : 0.0;
    row.flat_mfu = flat.mfu;
    row.hier_mfu = hier.mfu;
    row.flat_inter_util = flat.inter_util;
    row.hier_inter_util = hier.inter_util;
    rows.push_back(row);
  }
  return rows;
}

std::string scaling_csv(const std::vector<ScalingRow>& rows) {
  std::ostringstream os;
  os << "gpus,nodes,seq_global,flat_step_s,hier_step_s,speedup,flat_mfu,hier_mfu,"
        "flat_inter_util,hier_inter_util\n";
  os.precision(6);
  for (const ScalingRow& r : rows) {
    os << r.gpus << ',' << r.nodes << ',' << r.seq_global << ',' << r.flat_step_s << ','
       << r.hier_step_s << ',' << r.speedup << ',' << r.flat_mfu << ',' << r.hier_mfu << ','
       << r.flat_inter_util << ',' << r.hier_inter_util << '\n';
  }
  return os.str();
}

namespace {

bool fail(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
  return false;
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

bool check_weak_scaling(const std::vector<ScalingRow>& rows, const sim::HardwareSpec& hw,
                        std::int64_t ctx_per_gpu, std::string* why) {
  if (rows.empty()) return fail(why, "no rows");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    const std::string at = "row " + std::to_string(i) + " (gpus " + std::to_string(r.gpus) + ")";
    if (r.gpus < 1 || r.nodes < 1) return fail(why, at + ": bad geometry");
    if (i > 0 && r.gpus != rows[i - 1].gpus * 2) {
      return fail(why, at + ": gpus not doubling");
    }
    if (r.seq_global != static_cast<std::int64_t>(r.gpus) * ctx_per_gpu) {
      return fail(why, at + ": seq_global != gpus * ctx_per_gpu (not weak scaling)");
    }
    if (!finite_positive(r.flat_step_s) || !finite_positive(r.hier_step_s)) {
      return fail(why, at + ": non-positive step time");
    }
    if (!(r.flat_mfu > 0.0 && r.flat_mfu <= 1.0) || !(r.hier_mfu > 0.0 && r.hier_mfu <= 1.0)) {
      return fail(why, at + ": MFU outside (0, 1]");
    }
    if (!(r.flat_inter_util >= 0.0 && r.flat_inter_util <= 1.0) ||
        !(r.hier_inter_util >= 0.0 && r.hier_inter_util <= 1.0)) {
      return fail(why, at + ": inter-link utilization outside [0, 1]");
    }
    const double expect_speedup = r.flat_step_s / r.hier_step_s;
    if (std::abs(r.speedup - expect_speedup) > 1e-9 * expect_speedup) {
      return fail(why, at + ": speedup inconsistent with step times");
    }
    // The acceptance contract: on any multi-node world with a slower
    // inter-node link, the hierarchical routing must strictly win.
    if (r.nodes > 1 && hw.ib_bw < hw.nvlink_bw && !(r.hier_step_s < r.flat_step_s)) {
      return fail(why, at + ": hierarchical does not strictly beat flat");
    }
  }
  return true;
}

}  // namespace fpdt::topo
