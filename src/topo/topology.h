// Physical topology of the emulated fleet: nodes × ranks-per-node with
// per-link bandwidth/latency classes and a contention model.
//
// The seed treated the rank group as flat — every pair of ranks one uniform
// link. Production long-context runs are racks: GPUs inside a node talk over
// switched NVLink (per-GPU point-to-point bandwidth, effectively
// uncontended), while traffic leaving the node funnels through one IB HCA
// shared by every GPU on the node (§5.1's testbed: 4×A100 per node, 200 Gb/s
// HDR between nodes). topo::Topology captures exactly that much structure:
//
//   * rank placement is node-major: rank r lives on node r / ranks_per_node
//     with local ordinal r % ranks_per_node, so a node's ranks are a
//     contiguous global range (the layout every launcher produces);
//   * each link class is a LinkSpec {bandwidth, latency, capacity}; capacity
//     is the number of concurrent flows the link carries at full bandwidth
//     before it starts dividing (NVLink: one flow per GPU pair through the
//     switch; IB: one HCA shared by the whole node);
//   * phase_time() prices one communication phase under that contention
//     model — the number comm::HierarchicalProcessGroup charges as virtual
//     link-busy time and sim's weak-scaling model feeds into PipelineSim.
//
// The topology is a pure description: it owns no ranks and moves no data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/hardware.h"

namespace fpdt::topo {

// Which fabric a (src, dst) pair crosses.
enum class LinkClass {
  kSelf,   // src == dst: a local copy, never priced as link traffic
  kIntra,  // same node: NVLink (or PCIe on hosts without NVLink)
  kInter,  // different nodes: the node's shared IB HCA
};

const char* link_class_name(LinkClass c);

struct LinkSpec {
  double bandwidth = 100e9;  // bytes/s per flow at or below capacity
  double latency_s = 5e-6;   // fixed per-phase cost
  // Concurrent flows the link sustains at full per-flow bandwidth; beyond
  // this the aggregate is capacity·bandwidth split evenly (the contention
  // model: an IB HCA has capacity 1 — four GPUs sending together each get a
  // quarter; a switched NVLink fabric has capacity = ranks-per-node).
  int capacity = 1;
};

// Per-link traffic/occupancy counters, the hierarchical analogue of
// comm::CommStats. Bytes are logical BF16 transport bytes (2/elem, matching
// CommStats); seconds are modeled virtual link-busy time from phase_time().
struct LinkStats {
  std::int64_t intra_bytes = 0;
  std::int64_t inter_bytes = 0;
  std::int64_t intra_phases = 0;  // collective phases routed intra-node
  std::int64_t inter_phases = 0;
  double intra_busy_s = 0.0;
  double inter_busy_s = 0.0;
  int max_intra_flows = 0;  // peak concurrent flows observed per link class
  int max_inter_flows = 0;

  std::int64_t total_bytes() const { return intra_bytes + inter_bytes; }
  std::string to_string() const;
};

class Topology {
 public:
  // Single node holding the whole world — the seed's flat fabric.
  static Topology flat(int world);

  // nodes × ranks_per_node grid with explicit link classes.
  static Topology grid(int nodes, int ranks_per_node, LinkSpec intra, LinkSpec inter);

  // Grid with link classes read off a HardwareSpec (NVLink intra, IB inter).
  static Topology grid(int nodes, int ranks_per_node, const sim::HardwareSpec& hw);

  // Partitions `world` ranks onto `hw` nodes: ranks-per-node is the largest
  // divisor of world that fits hw.gpus_per_node, so every node is full and
  // uniform. world <= gpus_per_node degenerates to a flat single node.
  static Topology from_hardware(const sim::HardwareSpec& hw, int world);

  int world() const { return nodes_ * ranks_per_node_; }
  int nodes() const { return nodes_; }
  int ranks_per_node() const { return ranks_per_node_; }
  bool hierarchical() const { return nodes_ > 1; }

  // Node-major placement.
  int node_of(int rank) const {
    check_rank(rank);
    return rank / ranks_per_node_;
  }
  int local_of(int rank) const {
    check_rank(rank);
    return rank % ranks_per_node_;
  }
  int rank_of(int node, int local) const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  LinkClass link(int src, int dst) const;

  // Global ranks of one node, ascending (a contiguous range).
  std::vector<int> node_members(int node) const;
  // Global ranks sharing local ordinal `local`, one per node, ascending
  // (stride ranks_per_node). Every pair crosses nodes: the inter-node axis.
  std::vector<int> cross_node_members(int local) const;

  const LinkSpec& intra() const { return intra_; }
  const LinkSpec& inter() const { return inter_; }
  const LinkSpec& spec(LinkClass c) const;

  // Modeled wall time of one phase in which `flows` concurrent transfers
  // each move `bytes_per_flow` over link class `c`. Contention: per-flow
  // bandwidth is spec.bandwidth·min(1, capacity/flows). kSelf is free.
  double phase_time(LinkClass c, std::int64_t bytes_per_flow, int flows) const;

  std::string to_string() const;  // e.g. "2x4 (intra 100.0GB/s, inter 25.0GB/s)"

 private:
  Topology(int nodes, int ranks_per_node, LinkSpec intra, LinkSpec inter);
  void check_rank(int rank) const {
    FPDT_CHECK(rank >= 0 && rank < world()) << " topology rank " << rank << " outside world "
                                            << world();
  }

  int nodes_;
  int ranks_per_node_;
  LinkSpec intra_;
  LinkSpec inter_;
};

}  // namespace fpdt::topo
