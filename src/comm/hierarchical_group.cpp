#include "comm/hierarchical_group.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace fpdt::comm {

HierarchicalProcessGroup::HierarchicalProcessGroup(topo::Topology topo)
    : ProcessGroup(topo.world()), topo_(std::move(topo)) {
  const int N = topo_.nodes();
  const int R = topo_.ranks_per_node();
  intra_.reserve(static_cast<std::size_t>(N));
  for (int n = 0; n < N; ++n) {
    intra_.push_back(std::make_unique<GroupView>(*this, topo_.node_members(n), /*draw_faults=*/false));
  }
  inter_.reserve(static_cast<std::size_t>(R));
  for (int jl = 0; jl < R; ++jl) {
    inter_.push_back(std::make_unique<GroupView>(*this, topo_.cross_node_members(jl), /*draw_faults=*/false));
  }
}

topo::LinkStats HierarchicalProcessGroup::link_stats() const {
  std::lock_guard<std::mutex> lock(link_mutex_);
  return link_;
}

void HierarchicalProcessGroup::reset_link_stats() {
  std::lock_guard<std::mutex> lock(link_mutex_);
  link_ = topo::LinkStats{};
}

void HierarchicalProcessGroup::charge_phase(topo::LinkClass cls, std::int64_t bytes, int flows,
                                            const char* name) const {
  if (bytes <= 0) return;
  const std::int64_t per_flow = bytes / world_size();
  const double busy = topo_.phase_time(cls, per_flow, flows);
  {
    std::lock_guard<std::mutex> lock(link_mutex_);
    if (cls == topo::LinkClass::kIntra) {
      link_.intra_bytes += bytes;
      link_.intra_phases += 1;
      link_.intra_busy_s += busy;
      if (flows > link_.max_intra_flows) link_.max_intra_flows = flows;
    } else {
      link_.inter_bytes += bytes;
      link_.inter_phases += 1;
      link_.inter_busy_s += busy;
      if (flows > link_.max_inter_flows) link_.max_inter_flows = flows;
    }
  }
  if (obs::tracing_enabled()) {
    obs::Tracer::instance().instant(obs::kCatComm, name, obs::kNodeRank, "comm",
                                    static_cast<double>(bytes), true);
  }
}

void HierarchicalProcessGroup::charge_reduction(std::int64_t delta, const char* name) const {
  if (delta <= 0) return;
  const int P = world_size();
  const int R = topo_.ranks_per_node();
  const int N = topo_.nodes();
  if (N == 1) {
    charge_phase(topo::LinkClass::kIntra, delta, R, name);
    return;
  }
  // Two-phase reduction transport: the node-local phase moves (R-1)/R of the
  // payload per rank, the cross-node phase (N-1)/(N·R); together exactly the
  // flat ring's (P-1)/P, so splitting `delta` by those ratios conserves it.
  const double intra_share =
      (static_cast<double>(P) * (R - 1)) / (static_cast<double>(R) * (P - 1));
  const auto intra = static_cast<std::int64_t>(std::llround(delta * intra_share));
  charge_phase(topo::LinkClass::kIntra, intra, R, name);
  charge_phase(topo::LinkClass::kInter, delta - intra, R, name);
}

std::vector<Tensor> HierarchicalProcessGroup::all_to_all_heads_to_seq(
    std::span<const Tensor> local) const {
  const int P = world_size();
  const int R = topo_.ranks_per_node();
  const int N = topo_.nodes();
  if (N == 1) {
    const std::int64_t before = stats().all_to_all_bytes;
    std::vector<Tensor> out = ProcessGroup::all_to_all_heads_to_seq(local);
    charge_phase(topo::LinkClass::kIntra, stats().all_to_all_bytes - before, R,
                 "hier.a2a.intra");
    return out;
  }
  guard("a2a_heads_to_seq");
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_to_all input count";
  const std::int64_t s_local = local[0].dim(0);
  const std::int64_t h_global = local[0].dim(1);
  const std::int64_t d = local[0].dim(2);
  FPDT_CHECK_EQ(h_global % P, 0) << " heads must divide world size";

  // Phase 1 (inter): each stride-R cross-node group re-shards at node
  // granularity — rank (n, jl) ends with node-level head block n over the
  // group's full sequence, pieces in node order.
  std::vector<Tensor> mid(static_cast<std::size_t>(P));
  std::int64_t before = stats().all_to_all_bytes;
  for (int jl = 0; jl < R; ++jl) {
    std::vector<Tensor> in;
    in.reserve(static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) in.push_back(local[static_cast<std::size_t>(topo_.rank_of(n, jl))]);
    std::vector<Tensor> out = inter_[static_cast<std::size_t>(jl)]->all_to_all_heads_to_seq(in);
    for (int n = 0; n < N; ++n) mid[static_cast<std::size_t>(topo_.rank_of(n, jl))] = std::move(out[static_cast<std::size_t>(n)]);
  }
  charge_phase(topo::LinkClass::kInter, stats().all_to_all_bytes - before, R, "hier.a2a.inter");

  // Phase 2 (intra): each node refines its node-level head block to per-rank
  // heads over NVLink.
  before = stats().all_to_all_bytes;
  std::vector<Tensor> composed(static_cast<std::size_t>(P));
  for (int n = 0; n < N; ++n) {
    std::vector<Tensor> in;
    in.reserve(static_cast<std::size_t>(R));
    for (int jl = 0; jl < R; ++jl) in.push_back(mid[static_cast<std::size_t>(topo_.rank_of(n, jl))]);
    std::vector<Tensor> out = intra_[static_cast<std::size_t>(n)]->all_to_all_heads_to_seq(in);
    for (int jl = 0; jl < R; ++jl) composed[static_cast<std::size_t>(topo_.rank_of(n, jl))] = std::move(out[static_cast<std::size_t>(jl)]);
  }
  charge_phase(topo::LinkClass::kIntra, stats().all_to_all_bytes - before, R, "hier.a2a.intra");

  // Phase 3 (local): the composed sequence blocks land local-major (outer
  // local ordinal, inner node); the flat contract is node-major (rank
  // order). Pure memory shuffle — no link traffic to charge.
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  const std::int64_t h_local = h_global / P;
  for (int r = 0; r < P; ++r) {
    const Tensor& src = composed[static_cast<std::size_t>(r)];
    Tensor dst({P * s_local, h_local, d});
    for (int n = 0; n < N; ++n) {
      for (int jl = 0; jl < R; ++jl) {
        const std::int64_t to = static_cast<std::int64_t>(n) * R + jl;
        const std::int64_t from = static_cast<std::int64_t>(jl) * N + n;
        Tensor block = dst.slice0(to * s_local, (to + 1) * s_local);
        block.copy_from(src.slice0(from * s_local, (from + 1) * s_local));
      }
    }
    out.push_back(std::move(dst));
  }
  return out;
}

std::vector<Tensor> HierarchicalProcessGroup::all_to_all_seq_to_heads(
    std::span<const Tensor> global) const {
  const int P = world_size();
  const int R = topo_.ranks_per_node();
  const int N = topo_.nodes();
  if (N == 1) {
    const std::int64_t before = stats().all_to_all_bytes;
    std::vector<Tensor> out = ProcessGroup::all_to_all_seq_to_heads(global);
    charge_phase(topo::LinkClass::kIntra, stats().all_to_all_bytes - before, R,
                 "hier.a2a.intra");
    return out;
  }
  guard("a2a_seq_to_heads");
  FPDT_CHECK_EQ(static_cast<int>(global.size()), P) << " all_to_all input count";
  const std::int64_t s_global = global[0].dim(0);
  const std::int64_t h_local = global[0].dim(1);
  const std::int64_t d = global[0].dim(2);
  FPDT_CHECK_EQ(s_global % P, 0) << " sequence must divide world size";
  const std::int64_t s_local = s_global / P;

  // Exact inverse of heads_to_seq: undo the block permutation, then the
  // intra phase, then the inter phase.
  std::vector<Tensor> perm;
  perm.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const Tensor& src = global[static_cast<std::size_t>(r)];
    Tensor dst({s_global, h_local, d});
    for (int n = 0; n < N; ++n) {
      for (int jl = 0; jl < R; ++jl) {
        const std::int64_t to = static_cast<std::int64_t>(jl) * N + n;
        const std::int64_t from = static_cast<std::int64_t>(n) * R + jl;
        Tensor block = dst.slice0(to * s_local, (to + 1) * s_local);
        block.copy_from(src.slice0(from * s_local, (from + 1) * s_local));
      }
    }
    perm.push_back(std::move(dst));
  }

  std::int64_t before = stats().all_to_all_bytes;
  std::vector<Tensor> mid(static_cast<std::size_t>(P));
  for (int n = 0; n < N; ++n) {
    std::vector<Tensor> in;
    in.reserve(static_cast<std::size_t>(R));
    for (int jl = 0; jl < R; ++jl) in.push_back(perm[static_cast<std::size_t>(topo_.rank_of(n, jl))]);
    std::vector<Tensor> out = intra_[static_cast<std::size_t>(n)]->all_to_all_seq_to_heads(in);
    for (int jl = 0; jl < R; ++jl) mid[static_cast<std::size_t>(topo_.rank_of(n, jl))] = std::move(out[static_cast<std::size_t>(jl)]);
  }
  charge_phase(topo::LinkClass::kIntra, stats().all_to_all_bytes - before, R, "hier.a2a.intra");

  before = stats().all_to_all_bytes;
  std::vector<Tensor> result(static_cast<std::size_t>(P));
  for (int jl = 0; jl < R; ++jl) {
    std::vector<Tensor> in;
    in.reserve(static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) in.push_back(mid[static_cast<std::size_t>(topo_.rank_of(n, jl))]);
    std::vector<Tensor> out = inter_[static_cast<std::size_t>(jl)]->all_to_all_seq_to_heads(in);
    for (int n = 0; n < N; ++n) result[static_cast<std::size_t>(topo_.rank_of(n, jl))] = std::move(out[static_cast<std::size_t>(n)]);
  }
  charge_phase(topo::LinkClass::kInter, stats().all_to_all_bytes - before, R, "hier.a2a.inter");

  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) out.push_back(std::move(result[static_cast<std::size_t>(r)]));
  return out;
}

std::vector<Tensor> HierarchicalProcessGroup::all_gather(std::span<const Tensor> local) const {
  const int P = world_size();
  const int R = topo_.ranks_per_node();
  const int N = topo_.nodes();
  if (N == 1) {
    const std::int64_t before = stats().all_gather_bytes;
    std::vector<Tensor> out = ProcessGroup::all_gather(local);
    charge_phase(topo::LinkClass::kIntra, stats().all_gather_bytes - before, R,
                 "hier.all_gather.intra");
    return out;
  }
  guard("all_gather");
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_gather input count";

  // Phase 1 (intra): every rank materialises its node's slab — the concat of
  // the node's shards in local-ordinal (= global-rank) order.
  std::int64_t before = stats().all_gather_bytes;
  std::vector<Tensor> slab(static_cast<std::size_t>(P));
  for (int n = 0; n < N; ++n) {
    std::vector<Tensor> in;
    in.reserve(static_cast<std::size_t>(R));
    for (int jl = 0; jl < R; ++jl) in.push_back(local[static_cast<std::size_t>(topo_.rank_of(n, jl))]);
    std::vector<Tensor> out = intra_[static_cast<std::size_t>(n)]->all_gather(in);
    for (int jl = 0; jl < R; ++jl) slab[static_cast<std::size_t>(topo_.rank_of(n, jl))] = std::move(out[static_cast<std::size_t>(jl)]);
  }
  charge_phase(topo::LinkClass::kIntra, stats().all_gather_bytes - before, R,
               "hier.all_gather.intra");

  // Phase 2 (inter): gather the slabs in node order. Node-major placement
  // makes the slab concat equal the flat rank-order concat, bitwise.
  before = stats().all_gather_bytes;
  std::vector<Tensor> full(static_cast<std::size_t>(P));
  for (int jl = 0; jl < R; ++jl) {
    std::vector<Tensor> in;
    in.reserve(static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) in.push_back(slab[static_cast<std::size_t>(topo_.rank_of(n, jl))]);
    std::vector<Tensor> out = inter_[static_cast<std::size_t>(jl)]->all_gather(in);
    for (int n = 0; n < N; ++n) full[static_cast<std::size_t>(topo_.rank_of(n, jl))] = std::move(out[static_cast<std::size_t>(n)]);
  }
  charge_phase(topo::LinkClass::kInter, stats().all_gather_bytes - before, R,
               "hier.all_gather.inter");
  return full;
}

std::vector<Tensor> HierarchicalProcessGroup::reduce_scatter(std::span<const Tensor> full) const {
  // Bit-identity contract: summation stays in flat sequential rank order
  // (float addition is not associative; an intra-first tree would change the
  // result). The hierarchy re-prices the transport only.
  const std::int64_t before = stats().reduce_scatter_bytes;
  std::vector<Tensor> out = ProcessGroup::reduce_scatter(full);
  charge_reduction(stats().reduce_scatter_bytes - before, "hier.reduce_scatter");
  return out;
}

std::vector<Tensor> HierarchicalProcessGroup::all_reduce(std::span<const Tensor> local) const {
  // Same flat-order math as reduce_scatter; the reduce-scatter + all-gather
  // transport decomposition splits intra/inter in the same proportions.
  const std::int64_t before = stats().all_reduce_bytes;
  std::vector<Tensor> out = ProcessGroup::all_reduce(local);
  charge_reduction(stats().all_reduce_bytes - before, "hier.all_reduce");
  return out;
}

std::vector<Tensor> HierarchicalProcessGroup::ring_shift(std::span<const Tensor> local) const {
  const int P = world_size();
  const int R = topo_.ranks_per_node();
  const int N = topo_.nodes();
  const std::int64_t before = stats().p2p_bytes;
  std::vector<Tensor> out = ProcessGroup::ring_shift(local);
  const std::int64_t delta = stats().p2p_bytes - before;
  if (N == 1) {
    charge_phase(topo::LinkClass::kIntra, delta, R > 1 ? R - 1 : 1, "hier.ring.intra");
    return out;
  }
  // Rank r -> r+1 stays on-node except at node boundaries: P - N NVLink
  // hops, N IB hops (one per HCA — the only uncontended inter pattern).
  const std::int64_t intra = delta * (P - N) / P;
  charge_phase(topo::LinkClass::kIntra, intra, R > 1 ? R - 1 : 1, "hier.ring.intra");
  charge_phase(topo::LinkClass::kInter, delta - intra, 1, "hier.ring.inter");
  return out;
}

}  // namespace fpdt::comm
