// Topology-aware hierarchical collectives — the two-level NCCL stand-in.
//
// A flat ProcessGroup treats every rank pair as one uniform link. On a real
// rack the fabric is two-tier: switched NVLink inside the node, one shared
// IB HCA per node between nodes. HierarchicalProcessGroup decomposes each
// collective into an intra-node phase and an inter-node phase over
// GroupView subgroups of the parent:
//
//   All2All      inter-node sub-All2All over the stride-R cross-node groups
//                (head blocks coarsened to node granularity), then an
//                intra-node sub-All2All refining to per-rank heads, then a
//                local row-block permutation restoring the flat node-major
//                sequence order. Payload is bitwise identical to the flat
//                All2All (differential-tested) — the decomposition re-routes
//                traffic, it never touches values.
//   all_gather   intra-node gather (each rank materialises its node's slab),
//                then inter-node gather of the slabs. Node-major placement
//                makes slab concatenation in node order equal flat
//                concatenation in rank order, bitwise, ragged shards
//                included.
//   reductions   reduce_scatter / all_reduce keep the *flat sequential*
//                summation order — float reassociation is not associative,
//                and bit-identity with the flat group is the contract (the
//                deterministic-algorithm analogue of NCCL's tree/ring
//                switch). The hierarchy re-prices the transport only.
//   ring_shift   rank r -> r+1 is intra-node except at node boundaries:
//                P - N NVLink hops, N IB hops.
//
// Byte accounting lands on the shared CommStats counters exactly as the data
// moves (the phase subgroups forward their deltas to this group), and a
// second per-link ledger (topo::LinkStats) attributes the same bytes to
// intra/inter link classes, counts phases and peak concurrent flows, and
// accumulates modeled link-busy virtual time from Topology::phase_time().
//
// Fault semantics: the phase subgroups are built with fault draws disabled;
// this group draws once per collective at full world scope, so the
// deterministic fault-draw sequence is identical to the flat group's.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "comm/process_group.h"
#include "topo/topology.h"

namespace fpdt::comm {

class HierarchicalProcessGroup : public ProcessGroup {
 public:
  explicit HierarchicalProcessGroup(topo::Topology topo);

  HierarchicalProcessGroup(const HierarchicalProcessGroup&) = delete;
  HierarchicalProcessGroup& operator=(const HierarchicalProcessGroup&) = delete;

  topo::LinkStats link_stats() const override;
  void reset_link_stats() override;
  const topo::Topology* topology() const override { return &topo_; }

  std::vector<Tensor> all_to_all_heads_to_seq(std::span<const Tensor> local) const override;
  std::vector<Tensor> all_to_all_seq_to_heads(std::span<const Tensor> global) const override;
  std::vector<Tensor> all_gather(std::span<const Tensor> local) const override;
  std::vector<Tensor> reduce_scatter(std::span<const Tensor> full) const override;
  std::vector<Tensor> all_reduce(std::span<const Tensor> local) const override;
  std::vector<Tensor> ring_shift(std::span<const Tensor> local) const override;

 private:
  // Records one completed phase in the link ledger: `bytes` total logical
  // bytes over link class `cls`, priced as `flows` concurrent transfers of
  // `bytes / world` each. Emits a node-level trace instant when tracing.
  void charge_phase(topo::LinkClass cls, std::int64_t bytes, int flows,
                    const char* name) const;

  // Splits a flat-priced reduction's byte delta into the intra/inter shares
  // a two-phase (node-local then cross-node) reduction would move. The
  // two-phase total equals the flat ring total — (P-1)/P of the payload per
  // rank — so the split conserves bytes exactly.
  void charge_reduction(std::int64_t delta, const char* name) const;

  topo::Topology topo_;
  // unique_ptr because GroupView owns a ProcessGroup (atomics — immovable).
  std::vector<std::unique_ptr<GroupView>> intra_;  // one per node, over node_members(n)
  std::vector<std::unique_ptr<GroupView>> inter_;  // one per local ordinal (stride-R)

  mutable std::mutex link_mutex_;
  mutable topo::LinkStats link_;
};

}  // namespace fpdt::comm
