#include "comm/process_group.h"

#include <cstring>

#include "common/check.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "obs/trace.h"

namespace fpdt::comm {

ProcessGroup::ProcessGroup(int world_size) : world_size_(world_size) {
  FPDT_CHECK_GE(world_size, 1) << " process group size";
}

namespace {

// Copies head block [h_begin, h_end) of src [s, h, d] into dst [s, h_end-h_begin, d].
void copy_head_block(const Tensor& src, std::int64_t h_begin, std::int64_t h_end, Tensor& dst) {
  const std::int64_t s = src.dim(0);
  const std::int64_t h = src.dim(1);
  const std::int64_t d = src.dim(2);
  const std::int64_t hb = h_end - h_begin;
  const float* sp = src.data();
  float* dp = dst.data();
  for (std::int64_t t = 0; t < s; ++t) {
    std::memcpy(dp + t * hb * d, sp + (t * h + h_begin) * d,
                static_cast<std::size_t>(hb * d) * sizeof(float));
  }
}

// Copies src [s, hb, d] into dst [s, h, d] at head offset h_begin.
void paste_head_block(const Tensor& src, Tensor& dst, std::int64_t h_begin) {
  const std::int64_t s = src.dim(0);
  const std::int64_t hb = src.dim(1);
  const std::int64_t d = src.dim(2);
  const std::int64_t h = dst.dim(1);
  const float* sp = src.data();
  float* dp = dst.data();
  for (std::int64_t t = 0; t < s; ++t) {
    std::memcpy(dp + (t * h + h_begin) * d, sp + t * hb * d,
                static_cast<std::size_t>(hb * d) * sizeof(float));
  }
}

// Emits one instant per participating rank (value = logical bytes that rank
// moved in this collective) plus a running "comm bytes" counter, so every
// rank's trace lane shows its collective traffic. Stamped at each rank's own
// virtual clock. Collectives run once for the whole group, hence the loop.
void trace_collective(const char* name, int world, std::int64_t bytes_per_rank,
                      const CommStats& stats) {
  if (!obs::tracing_enabled()) return;
  const std::int64_t cumulative = (stats.all_to_all_bytes + stats.all_gather_bytes +
                                   stats.reduce_scatter_bytes + stats.all_reduce_bytes +
                                   stats.p2p_bytes) /
                                  world;
  obs::Tracer& tracer = obs::Tracer::instance();
  for (int r = 0; r < world; ++r) {
    tracer.instant(obs::kCatComm, name, r, "comm", static_cast<double>(bytes_per_rank), true);
    tracer.counter(obs::kCatComm, "comm bytes", r, static_cast<double>(cumulative));
  }
}

// Fault-injection point at the entry of every collective. The draw happens
// before any tensor math, and the math runs exactly once after the draws
// pass, so a recovered collective fault is invisible to results and byte
// stats. Collectives run once per group on the driver thread, hence rank -1
// (matches any rule rank pin). Exhausted retries are a hard failure — a real
// NCCL abort — surfaced as FpdtError for step-level recovery.
void survive_faults(const char* what) {
  if (!fault::faults_enabled()) return;
  const bool ok = fault::retry_transient(
      fault::BackoffPolicy{}, /*rank=*/-1, std::string("retry.") + what, [&] {
        fault::FaultInjector::instance().maybe_throw(fault::Site::kCollective, -1, what);
      });
  if (!ok) {
    throw FpdtError(std::string("collective ") + what + " failed after retries (injected)");
  }
}

}  // namespace

std::vector<Tensor> ProcessGroup::all_to_all_heads_to_seq(std::span<const Tensor> local) const {
  survive_faults("a2a_heads_to_seq");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_to_all input count";
  const std::int64_t s_local = local[0].dim(0);
  const std::int64_t h_global = local[0].dim(1);
  const std::int64_t d = local[0].dim(2);
  FPDT_CHECK_EQ(h_global % P, 0) << " heads must divide world size";
  const std::int64_t h_local = h_global / P;
  for (const Tensor& t : local) {
    FPDT_CHECK(t.ndim() == 3 && t.dim(0) == s_local && t.dim(1) == h_global && t.dim(2) == d)
        << " ragged all_to_all input " << t.shape_str();
  }

  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int dst = 0; dst < P; ++dst) {
    Tensor gathered({P * s_local, h_local, d});
    for (int src = 0; src < P; ++src) {
      // Rank `src` sends its head block `dst` to rank `dst`; pieces land in
      // rank order along the sequence dimension.
      Tensor piece = gathered.slice0(src * s_local, (src + 1) * s_local);
      copy_head_block(local[static_cast<std::size_t>(src)], dst * h_local, (dst + 1) * h_local,
                      piece);
    }
    out.push_back(std::move(gathered));
  }
  stats_.all_to_all_bytes += P * s_local * h_global * d * 2;  // logical BF16 bytes
  trace_collective("a2a heads_to_seq", P, s_local * h_global * d * 2, stats_);
  return out;
}

std::vector<Tensor> ProcessGroup::all_to_all_seq_to_heads(std::span<const Tensor> global) const {
  survive_faults("a2a_seq_to_heads");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(global.size()), P) << " all_to_all input count";
  const std::int64_t s_global = global[0].dim(0);
  const std::int64_t h_local = global[0].dim(1);
  const std::int64_t d = global[0].dim(2);
  FPDT_CHECK_EQ(s_global % P, 0) << " sequence must divide world size";
  const std::int64_t s_local = s_global / P;
  const std::int64_t h_global = h_local * P;

  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int dst = 0; dst < P; ++dst) {
    Tensor scattered({s_local, h_global, d});
    for (int src = 0; src < P; ++src) {
      // Rank `src` holds heads [src*h_local, ...); its sequence piece `dst`
      // returns to rank `dst`.
      Tensor piece =
          global[static_cast<std::size_t>(src)].slice0(dst * s_local, (dst + 1) * s_local);
      paste_head_block(piece, scattered, src * h_local);
    }
    out.push_back(std::move(scattered));
  }
  stats_.all_to_all_bytes += P * s_local * h_global * d * 2;
  trace_collective("a2a seq_to_heads", P, s_local * h_global * d * 2, stats_);
  return out;
}

std::vector<Tensor> ProcessGroup::all_gather(std::span<const Tensor> local) const {
  survive_faults("all_gather");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_gather input count";
  Tensor full = concat0(local);
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  out.push_back(std::move(full));
  for (int r = 1; r < P; ++r) out.push_back(out[0].clone());
  stats_.all_gather_bytes += out[0].numel() * 2 * (P - 1);
  trace_collective("all_gather", P, out[0].numel() * 2 * (P - 1) / P, stats_);
  return out;
}

std::vector<Tensor> ProcessGroup::reduce_scatter(std::span<const Tensor> full) const {
  survive_faults("reduce_scatter");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(full.size()), P) << " reduce_scatter input count";
  Tensor sum = full[0].clone();
  for (int r = 1; r < P; ++r) add_(sum, full[static_cast<std::size_t>(r)]);
  FPDT_CHECK_EQ(sum.dim(0) % P, 0) << " reduce_scatter dim0";
  const std::int64_t shard = sum.dim(0) / P;
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) out.push_back(sum.slice0(r * shard, (r + 1) * shard).clone());
  stats_.reduce_scatter_bytes += sum.numel() * 2 * (P - 1) / P * P;
  trace_collective("reduce_scatter", P, sum.numel() * 2 * (P - 1) / P, stats_);
  return out;
}

std::vector<Tensor> ProcessGroup::all_reduce(std::span<const Tensor> local) const {
  survive_faults("all_reduce");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_reduce input count";
  Tensor sum = local[0].clone();
  for (int r = 1; r < P; ++r) add_(sum, local[static_cast<std::size_t>(r)]);
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) out.push_back(sum.clone());
  stats_.all_reduce_bytes += sum.numel() * 2 * 2 * (P - 1);
  trace_collective("all_reduce", P, sum.numel() * 2 * 2 * (P - 1) / P, stats_);
  return out;
}

std::vector<Tensor> ProcessGroup::ring_shift(std::span<const Tensor> local) const {
  survive_faults("ring_shift");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " ring_shift input count";
  std::vector<Tensor> out(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    out[static_cast<std::size_t>((r + 1) % P)] = local[static_cast<std::size_t>(r)].clone();
    stats_.p2p_bytes += local[static_cast<std::size_t>(r)].numel() * 2;
  }
  trace_collective("ring_shift", P, local[0].numel() * 2, stats_);
  return out;
}

}  // namespace fpdt::comm
