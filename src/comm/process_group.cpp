#include "comm/process_group.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "obs/trace.h"

namespace fpdt::comm {

const char* errc_name(CommErrc code) {
  switch (code) {
    case CommErrc::kOk: return "ok";
    case CommErrc::kRankLost: return "ranklost";
    case CommErrc::kPartitioned: return "partitioned";
    case CommErrc::kAborted: return "aborted";
  }
  return "unknown";
}

std::string CommResult::to_string() const {
  std::string s = errc_name(code);
  if (rank >= 0) s += " rank=" + std::to_string(rank);
  if (!detail.empty()) s += " (" + detail + ")";
  return s;
}

ProcessGroup::ProcessGroup(int world_size) : ProcessGroup(world_size, /*draw_faults=*/true) {}

ProcessGroup::ProcessGroup(int world_size, bool draw_faults)
    : world_size_(world_size), draw_faults_(draw_faults) {
  FPDT_CHECK_GE(world_size, 1) << " process group size";
}

CommStats ProcessGroup::stats() const {
  CommStats s;
  s.all_to_all_bytes = stats_.all_to_all.load(std::memory_order_relaxed);
  s.all_gather_bytes = stats_.all_gather.load(std::memory_order_relaxed);
  s.reduce_scatter_bytes = stats_.reduce_scatter.load(std::memory_order_relaxed);
  s.all_reduce_bytes = stats_.all_reduce.load(std::memory_order_relaxed);
  s.p2p_bytes = stats_.p2p.load(std::memory_order_relaxed);
  return s;
}

void ProcessGroup::reset_stats() {
  stats_.all_to_all.store(0, std::memory_order_relaxed);
  stats_.all_gather.store(0, std::memory_order_relaxed);
  stats_.reduce_scatter.store(0, std::memory_order_relaxed);
  stats_.all_reduce.store(0, std::memory_order_relaxed);
  stats_.p2p.store(0, std::memory_order_relaxed);
}

namespace {

// Copies head block [h_begin, h_end) of src [s, h, d] into dst [s, h_end-h_begin, d].
void copy_head_block(const Tensor& src, std::int64_t h_begin, std::int64_t h_end, Tensor& dst) {
  const std::int64_t s = src.dim(0);
  const std::int64_t h = src.dim(1);
  const std::int64_t d = src.dim(2);
  const std::int64_t hb = h_end - h_begin;
  const float* sp = src.data();
  float* dp = dst.data();
  for (std::int64_t t = 0; t < s; ++t) {
    std::memcpy(dp + t * hb * d, sp + (t * h + h_begin) * d,
                static_cast<std::size_t>(hb * d) * sizeof(float));
  }
}

// Copies src [s, hb, d] into dst [s, h, d] at head offset h_begin.
void paste_head_block(const Tensor& src, Tensor& dst, std::int64_t h_begin) {
  const std::int64_t s = src.dim(0);
  const std::int64_t hb = src.dim(1);
  const std::int64_t d = src.dim(2);
  const std::int64_t h = dst.dim(1);
  const float* sp = src.data();
  float* dp = dst.data();
  for (std::int64_t t = 0; t < s; ++t) {
    std::memcpy(dp + (t * h + h_begin) * d, sp + t * hb * d,
                static_cast<std::size_t>(hb * d) * sizeof(float));
  }
}

// Emits one instant per participating rank (value = logical bytes that rank
// moved in this collective) plus a running "comm bytes" counter, so every
// rank's trace lane shows its collective traffic. Stamped at each rank's own
// virtual clock. Collectives run once for the whole group, hence the loop.
void trace_collective(const char* name, int world, std::int64_t bytes_per_rank,
                      const CommStats& stats) {
  if (!obs::tracing_enabled()) return;
  const std::int64_t cumulative = stats.total() / world;
  obs::Tracer& tracer = obs::Tracer::instance();
  for (int r = 0; r < world; ++r) {
    tracer.instant(obs::kCatComm, name, r, "comm", static_cast<double>(bytes_per_rank), true);
    tracer.counter(obs::kCatComm, "comm bytes", r, static_cast<double>(cumulative));
  }
}

// Fault-injection point at the entry of every collective. The draw happens
// before any tensor math, and the math runs exactly once after the draws
// pass, so a recovered collective fault is invisible to results and byte
// stats. Collectives run once per group on the driver thread, hence rank -1
// (matches any rule rank pin).
//
// Membership churn draws come first and are not retryable at this layer —
// a dead rank does not come back because the collective is reissued, and a
// partitioned fabric fails every retry inside the step. Both surface as
// typed CommError (kRankLost names the victim; kPartitioned heals when the
// step is replayed, because a step-pinned netpart rule fires once).
// Exhausted transient retries — a real NCCL abort — surface as
// CommError{kAborted} for step-level recovery.
void survive_faults(const char* what, int world) {
  if (!fault::faults_enabled()) return;
  fault::FaultInjector& inj = fault::FaultInjector::instance();
  const int victim = inj.group_event(fault::Site::kRankLost, world - 1);
  if (victim >= 0) {
    throw CommError({CommErrc::kRankLost, victim, what});
  }
  if (inj.should_fail(fault::Site::kNetPart, -1)) {
    throw CommError({CommErrc::kPartitioned, -1, what});
  }
  const bool ok = fault::retry_transient(
      fault::BackoffPolicy{}, /*rank=*/-1, std::string("retry.") + what, [&] {
        inj.maybe_throw(fault::Site::kCollective, -1, what);
      });
  if (!ok) {
    throw CommError({CommErrc::kAborted, -1, std::string(what) + " failed after retries"});
  }
}

}  // namespace

void ProcessGroup::guard(const char* what) const {
  if (draw_faults_) survive_faults(what, world_size_);
}

std::vector<Tensor> ProcessGroup::all_to_all_heads_to_seq(std::span<const Tensor> local) const {
  guard("a2a_heads_to_seq");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_to_all input count";
  const std::int64_t s_local = local[0].dim(0);
  const std::int64_t h_global = local[0].dim(1);
  const std::int64_t d = local[0].dim(2);
  FPDT_CHECK_EQ(h_global % P, 0) << " heads must divide world size";
  const std::int64_t h_local = h_global / P;
  for (const Tensor& t : local) {
    FPDT_CHECK(t.ndim() == 3 && t.dim(0) == s_local && t.dim(1) == h_global && t.dim(2) == d)
        << " ragged all_to_all input " << t.shape_str();
  }

  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int dst = 0; dst < P; ++dst) {
    Tensor gathered({P * s_local, h_local, d});
    for (int src = 0; src < P; ++src) {
      // Rank `src` sends its head block `dst` to rank `dst`; pieces land in
      // rank order along the sequence dimension.
      Tensor piece = gathered.slice0(src * s_local, (src + 1) * s_local);
      copy_head_block(local[static_cast<std::size_t>(src)], dst * h_local, (dst + 1) * h_local,
                      piece);
    }
    out.push_back(std::move(gathered));
  }
  // Remote-destined bytes only: each rank keeps its own head block
  // (h_local of h_global); that local copy never touches a link.
  stats_.all_to_all.fetch_add(P * s_local * (h_global - h_local) * d * 2,  // logical BF16
                              std::memory_order_relaxed);
  trace_collective("a2a heads_to_seq", P, s_local * (h_global - h_local) * d * 2, stats());
  return out;
}

std::vector<Tensor> ProcessGroup::all_to_all_seq_to_heads(std::span<const Tensor> global) const {
  guard("a2a_seq_to_heads");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(global.size()), P) << " all_to_all input count";
  const std::int64_t s_global = global[0].dim(0);
  const std::int64_t h_local = global[0].dim(1);
  const std::int64_t d = global[0].dim(2);
  FPDT_CHECK_EQ(s_global % P, 0) << " sequence must divide world size";
  const std::int64_t s_local = s_global / P;
  const std::int64_t h_global = h_local * P;

  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int dst = 0; dst < P; ++dst) {
    Tensor scattered({s_local, h_global, d});
    for (int src = 0; src < P; ++src) {
      // Rank `src` holds heads [src*h_local, ...); its sequence piece `dst`
      // returns to rank `dst`.
      Tensor piece =
          global[static_cast<std::size_t>(src)].slice0(dst * s_local, (dst + 1) * s_local);
      paste_head_block(piece, scattered, src * h_local);
    }
    out.push_back(std::move(scattered));
  }
  // Remote-destined bytes only, mirroring heads_to_seq.
  stats_.all_to_all.fetch_add(P * s_local * (h_global - h_local) * d * 2,
                              std::memory_order_relaxed);
  trace_collective("a2a seq_to_heads", P, s_local * (h_global - h_local) * d * 2, stats());
  return out;
}

std::vector<Tensor> ProcessGroup::all_gather(std::span<const Tensor> local) const {
  guard("all_gather");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_gather input count";
  Tensor full = concat0(local);
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  out.push_back(std::move(full));
  for (int r = 1; r < P; ++r) out.push_back(out[0].clone());
  stats_.all_gather.fetch_add(out[0].numel() * 2 * (P - 1), std::memory_order_relaxed);
  trace_collective("all_gather", P, out[0].numel() * 2 * (P - 1) / P, stats());
  return out;
}

std::vector<Tensor> ProcessGroup::reduce_scatter(std::span<const Tensor> full) const {
  guard("reduce_scatter");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(full.size()), P) << " reduce_scatter input count";
  Tensor sum = full[0].clone();
  for (int r = 1; r < P; ++r) add_(sum, full[static_cast<std::size_t>(r)]);
  FPDT_CHECK_EQ(sum.dim(0) % P, 0) << " reduce_scatter dim0";
  const std::int64_t shard = sum.dim(0) / P;
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) out.push_back(sum.slice0(r * shard, (r + 1) * shard).clone());
  stats_.reduce_scatter.fetch_add(sum.numel() * 2 * (P - 1) / P * P, std::memory_order_relaxed);
  trace_collective("reduce_scatter", P, sum.numel() * 2 * (P - 1) / P, stats());
  return out;
}

std::vector<Tensor> ProcessGroup::all_reduce(std::span<const Tensor> local) const {
  guard("all_reduce");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " all_reduce input count";
  Tensor sum = local[0].clone();
  for (int r = 1; r < P; ++r) add_(sum, local[static_cast<std::size_t>(r)]);
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) out.push_back(sum.clone());
  stats_.all_reduce.fetch_add(sum.numel() * 2 * 2 * (P - 1), std::memory_order_relaxed);
  trace_collective("all_reduce", P, sum.numel() * 2 * 2 * (P - 1) / P, stats());
  return out;
}

std::vector<Tensor> ProcessGroup::ring_shift(std::span<const Tensor> local) const {
  guard("ring_shift");
  const int P = world_size_;
  FPDT_CHECK_EQ(static_cast<int>(local.size()), P) << " ring_shift input count";
  std::vector<Tensor> out(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    out[static_cast<std::size_t>((r + 1) % P)] = local[static_cast<std::size_t>(r)].clone();
    stats_.p2p.fetch_add(local[static_cast<std::size_t>(r)].numel() * 2,
                         std::memory_order_relaxed);
  }
  trace_collective("ring_shift", P, local[0].numel() * 2, stats());
  return out;
}

// ---- GroupView -------------------------------------------------------------

namespace {

std::vector<int> checked_members(const ProcessGroup& parent, std::vector<int> members) {
  FPDT_CHECK_GE(members.size(), 1u) << " group view needs at least one member";
  std::sort(members.begin(), members.end());
  for (std::size_t i = 0; i < members.size(); ++i) {
    FPDT_CHECK(members[i] >= 0 && members[i] < parent.world_size())
        << " group view member " << members[i] << " outside world " << parent.world_size();
    if (i > 0) {
      FPDT_CHECK_NE(members[i], members[i - 1]) << " duplicate group view member";
    }
  }
  return members;
}

}  // namespace

GroupView::GroupView(ProcessGroup& parent, std::vector<int> members, bool draw_faults)
    : parent_(&parent),
      sub_(static_cast<int>(checked_members(parent, members).size()), draw_faults),
      members_(checked_members(parent, std::move(members))) {}

int GroupView::global_rank(int ordinal) const {
  FPDT_CHECK(ordinal >= 0 && ordinal < size()) << " group view ordinal " << ordinal;
  return members_[static_cast<std::size_t>(ordinal)];
}

bool GroupView::contains(int global_rank) const {
  return std::binary_search(members_.begin(), members_.end(), global_rank);
}

GroupView GroupView::subview(const std::vector<int>& ordinals) const {
  std::vector<int> globals;
  globals.reserve(ordinals.size());
  for (int o : ordinals) globals.push_back(global_rank(o));
  return GroupView(*parent_, std::move(globals));
}

// The sub-group moves the data (and draws faults, unless this view skips
// them) at size() ranks; its byte deltas are folded back into the parent's
// counters so fleet-level comm accounting includes survivor-only
// coordination traffic and hierarchical phase traffic alike.
std::vector<Tensor> GroupView::all_to_all_heads_to_seq(std::span<const Tensor> local) const {
  const std::int64_t before = sub_.stats().all_to_all_bytes;
  std::vector<Tensor> out = sub_.all_to_all_heads_to_seq(local);
  parent_->stats_.all_to_all.fetch_add(sub_.stats().all_to_all_bytes - before,
                                       std::memory_order_relaxed);
  return out;
}

std::vector<Tensor> GroupView::all_to_all_seq_to_heads(std::span<const Tensor> global) const {
  const std::int64_t before = sub_.stats().all_to_all_bytes;
  std::vector<Tensor> out = sub_.all_to_all_seq_to_heads(global);
  parent_->stats_.all_to_all.fetch_add(sub_.stats().all_to_all_bytes - before,
                                       std::memory_order_relaxed);
  return out;
}

std::vector<Tensor> GroupView::all_gather(std::span<const Tensor> local) const {
  const std::int64_t before = sub_.stats().all_gather_bytes;
  std::vector<Tensor> out = sub_.all_gather(local);
  parent_->stats_.all_gather.fetch_add(sub_.stats().all_gather_bytes - before,
                                       std::memory_order_relaxed);
  return out;
}

std::vector<Tensor> GroupView::reduce_scatter(std::span<const Tensor> full) const {
  const std::int64_t before = sub_.stats().reduce_scatter_bytes;
  std::vector<Tensor> out = sub_.reduce_scatter(full);
  parent_->stats_.reduce_scatter.fetch_add(sub_.stats().reduce_scatter_bytes - before,
                                           std::memory_order_relaxed);
  return out;
}

std::vector<Tensor> GroupView::all_reduce(std::span<const Tensor> local) const {
  const std::int64_t before = sub_.stats().all_reduce_bytes;
  std::vector<Tensor> out = sub_.all_reduce(local);
  parent_->stats_.all_reduce.fetch_add(sub_.stats().all_reduce_bytes - before,
                                       std::memory_order_relaxed);
  return out;
}

}  // namespace fpdt::comm
