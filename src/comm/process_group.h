// In-process SPMD collectives — the NCCL stand-in.
//
// The functional layer emulates a sequence-parallel group of P ranks inside
// one process: per-rank state is a std::vector with one entry per rank, and
// a collective is a function from per-rank inputs to per-rank outputs that
// moves real data exactly the way NCCL would. This preserves every layout
// property the paper relies on (head scatter / sequence gather, rank-ordinal
// chunk contiguity, causal-mask validity) while replacing only the
// transport.
//
// Layout convention: attention-layer tensors are [s, h, d] (batch is looped
// at the model level; the paper evaluates with batch size 1). "Heads to
// sequence" All2All is the Ulysses forward re-shard:
//   per rank  [s_local, h_global, d]  ->  [s_global, h_local, d]
// where h_local = h_global / P and s_global = P * s_local, with received
// sequence pieces concatenated in rank order.
//
// Collectives are virtual: comm::HierarchicalProcessGroup
// (hierarchical_group.h) overrides them with a topology-aware two-phase
// decomposition that is payload-bitwise-identical to this flat group.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "tensor/tensor.h"
#include "topo/topology.h"

namespace fpdt::comm {

struct CommStats {
  std::int64_t all_to_all_bytes = 0;
  std::int64_t all_gather_bytes = 0;
  std::int64_t reduce_scatter_bytes = 0;
  std::int64_t all_reduce_bytes = 0;
  std::int64_t p2p_bytes = 0;

  std::int64_t total() const {
    return all_to_all_bytes + all_gather_bytes + reduce_scatter_bytes + all_reduce_bytes +
           p2p_bytes;
  }
};

// ---- Typed collective failure ----------------------------------------------
// A real NCCL communicator does not limp along after a rank dies or the
// fabric partitions — the collective aborts with an error code the runtime
// must interpret. The emulation mirrors that: instead of a bare FpdtError
// (indistinguishable from any other step failure), a failed collective
// carries a CommResult naming what broke and, for rank loss, *which* rank,
// so the elastic membership layer can choose shrink vs heal vs replay.
enum class CommErrc {
  kOk,           // not an error (default-constructed CommResult)
  kRankLost,     // a member died; `rank` names the victim — permanent
  kPartitioned,  // the fabric split; heals on step replay — transient at step scope
  kAborted,      // transient-retry budget exhausted (the old hard abort)
};

const char* errc_name(CommErrc code);

struct CommResult {
  CommErrc code = CommErrc::kOk;
  int rank = -1;       // victim rank for kRankLost, else -1
  std::string detail;  // collective name + context

  bool ok() const { return code == CommErrc::kOk; }
  std::string to_string() const;
};

// The exception form of a non-ok CommResult. Derives from FpdtError so
// layers that only know the generic recovery ladder still degrade to
// restore-and-replay; layers that know better (fault::ElasticWorldManager)
// catch the typed form and read result().
class CommError : public FpdtError {
 public:
  explicit CommError(CommResult result)
      : FpdtError("collective failed: " + result.to_string()), result_(std::move(result)) {}

  const CommResult& result() const { return result_; }

 private:
  CommResult result_;
};

class ProcessGroup {
 public:
  explicit ProcessGroup(int world_size);
  virtual ~ProcessGroup() = default;

  int world_size() const { return world_size_; }

  // Snapshot of the byte counters. Accounting is atomic per counter:
  // collectives may run concurrently from parallel_for_ranks callers (the
  // sharded optimizer, gather groups), and each collective accumulates its
  // contribution with one relaxed fetch_add — no data race, no lock on the
  // hot path. The snapshot is a consistent-enough view for reports (each
  // field is individually exact; cross-field skew is bounded by in-flight
  // collectives).
  CommStats stats() const;
  void reset_stats();

  // Per-link traffic counters and the topology behind them. The flat group
  // has neither: all zeros / nullptr. HierarchicalProcessGroup overrides
  // all three.
  virtual topo::LinkStats link_stats() const { return {}; }
  virtual void reset_link_stats() {}
  virtual const topo::Topology* topology() const { return nullptr; }

  // Ulysses forward re-shard. Each rank holds [s_local, h_global, d] with
  // h_global divisible by P; returns per-rank [P*s_local, h_global/P, d].
  // Received pieces are concatenated along sequence in rank order, so with
  // the rank-ordinal chunk layout (Fig. 6) the result is a contiguous slice
  // of the global sequence.
  virtual std::vector<Tensor> all_to_all_heads_to_seq(std::span<const Tensor> local) const;

  // Exact inverse of all_to_all_heads_to_seq.
  virtual std::vector<Tensor> all_to_all_seq_to_heads(std::span<const Tensor> global) const;

  // Concatenate per-rank shards along dim 0 onto every rank.
  virtual std::vector<Tensor> all_gather(std::span<const Tensor> local) const;

  // Elementwise-sum all inputs, then hand rank r the r-th dim-0 slice.
  // Inputs must share a shape whose dim 0 is divisible by P.
  virtual std::vector<Tensor> reduce_scatter(std::span<const Tensor> full) const;

  // Elementwise sum replicated to every rank.
  virtual std::vector<Tensor> all_reduce(std::span<const Tensor> local) const;

  // Ring shift: rank r's tensor is delivered to rank (r + 1) % P.
  // The building block of Ring Attention's KV rotation.
  virtual std::vector<Tensor> ring_shift(std::span<const Tensor> local) const;

 protected:
  // One relaxed atomic per counter (collectives are const and concurrent).
  struct AtomicStats {
    std::atomic<std::int64_t> all_to_all{0};
    std::atomic<std::int64_t> all_gather{0};
    std::atomic<std::int64_t> reduce_scatter{0};
    std::atomic<std::int64_t> all_reduce{0};
    std::atomic<std::int64_t> p2p{0};
  };

  // Fault-injection entry at the top of every collective: one draw per
  // collective at group scope (see the .cpp for the full semantics). A
  // group with fault draws disabled (the internal phase sub-groups of
  // HierarchicalProcessGroup, which draws once itself at full world scope)
  // skips it so the deterministic draw sequence matches the flat group's.
  void guard(const char* what) const;

  mutable AtomicStats stats_;

 private:
  friend class GroupView;

  ProcessGroup(int world_size, bool draw_faults);

  int world_size_;
  bool draw_faults_ = true;
};

// ---- GroupView -------------------------------------------------------------
// A communicator restricted to a healthy subset of a parent group's ranks —
// the NCCL "shrunken communicator" the elastic layer rebuilds after rank
// loss, and the phase subgroup the hierarchical group decomposes over.
// Ordinals 0..size()-1 are dense over `members` (ascending global rank);
// global_rank() maps back. Collectives run over the members only and are
// charged to the *parent* group's byte counters, so `fpdt`'s comm
// accounting stays whole-fleet even while a reshard coordinates over
// survivors (or a collective phase runs over one node's ranks).
class GroupView {
 public:
  // `members`: distinct ranks of `parent`, at least one. Kept sorted.
  // `draw_faults` = false skips the per-collective fault draw inside this
  // view (the caller draws at its own scope — hierarchical phases).
  GroupView(ProcessGroup& parent, std::vector<int> members, bool draw_faults = true);

  int size() const { return sub_.world_size(); }
  int global_rank(int ordinal) const;
  bool contains(int global_rank) const;
  const std::vector<int>& members() const { return members_; }

  // Nested subgroup: a view over the same parent restricted to the given
  // *ordinals* of this view (e.g. the intra-node slice of a survivor set).
  // Accounting still lands on the shared parent, so a rank that belongs to
  // both an intra-node and an inter-node view charges one counter set.
  GroupView subview(const std::vector<int>& ordinals) const;

  // Collectives over the member subset (inputs/outputs in ordinal order).
  std::vector<Tensor> all_to_all_heads_to_seq(std::span<const Tensor> local) const;
  std::vector<Tensor> all_to_all_seq_to_heads(std::span<const Tensor> global) const;
  std::vector<Tensor> all_gather(std::span<const Tensor> local) const;
  std::vector<Tensor> reduce_scatter(std::span<const Tensor> full) const;
  std::vector<Tensor> all_reduce(std::span<const Tensor> local) const;

 private:
  ProcessGroup* parent_;
  ProcessGroup sub_;  // does the actual data movement at size() ranks
  std::vector<int> members_;
};

}  // namespace fpdt::comm
