// In-process SPMD collectives — the NCCL stand-in.
//
// The functional layer emulates a sequence-parallel group of P ranks inside
// one process: per-rank state is a std::vector with one entry per rank, and
// a collective is a function from per-rank inputs to per-rank outputs that
// moves real data exactly the way NCCL would. This preserves every layout
// property the paper relies on (head scatter / sequence gather, rank-ordinal
// chunk contiguity, causal-mask validity) while replacing only the
// transport.
//
// Layout convention: attention-layer tensors are [s, h, d] (batch is looped
// at the model level; the paper evaluates with batch size 1). "Heads to
// sequence" All2All is the Ulysses forward re-shard:
//   per rank  [s_local, h_global, d]  ->  [s_global, h_local, d]
// where h_local = h_global / P and s_global = P * s_local, with received
// sequence pieces concatenated in rank order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace fpdt::comm {

struct CommStats {
  std::int64_t all_to_all_bytes = 0;
  std::int64_t all_gather_bytes = 0;
  std::int64_t reduce_scatter_bytes = 0;
  std::int64_t all_reduce_bytes = 0;
  std::int64_t p2p_bytes = 0;
};

class ProcessGroup {
 public:
  explicit ProcessGroup(int world_size);

  int world_size() const { return world_size_; }
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  // Ulysses forward re-shard. Each rank holds [s_local, h_global, d] with
  // h_global divisible by P; returns per-rank [P*s_local, h_global/P, d].
  // Received pieces are concatenated along sequence in rank order, so with
  // the rank-ordinal chunk layout (Fig. 6) the result is a contiguous slice
  // of the global sequence.
  std::vector<Tensor> all_to_all_heads_to_seq(std::span<const Tensor> local) const;

  // Exact inverse of all_to_all_heads_to_seq.
  std::vector<Tensor> all_to_all_seq_to_heads(std::span<const Tensor> global) const;

  // Concatenate per-rank shards along dim 0 onto every rank.
  std::vector<Tensor> all_gather(std::span<const Tensor> local) const;

  // Elementwise-sum all inputs, then hand rank r the r-th dim-0 slice.
  // Inputs must share a shape whose dim 0 is divisible by P.
  std::vector<Tensor> reduce_scatter(std::span<const Tensor> full) const;

  // Elementwise sum replicated to every rank.
  std::vector<Tensor> all_reduce(std::span<const Tensor> local) const;

  // Ring shift: rank r's tensor is delivered to rank (r + 1) % P.
  // The building block of Ring Attention's KV rotation.
  std::vector<Tensor> ring_shift(std::span<const Tensor> local) const;

 private:
  mutable CommStats stats_;
  int world_size_;
};

}  // namespace fpdt::comm
