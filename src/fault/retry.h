// Retry-with-exponential-backoff for transient faults.
//
// The body of a retry loop is the fault *draw*, not the real work: transfer
// and collective payloads in this emulation are deterministic and must
// execute exactly once, so callers draw (and re-draw on retry) before
// issuing the real operation. Each failed attempt charges an exponential
// backoff to the injector's sink, where the owning FpdtEnv turns it into a
// stream span — retries cost virtual time and show up as exposed transfer
// time in `fpdt overlap` and traces, exactly like a real NIC hiccup would.
#pragma once

#include <string>
#include <utility>

#include "common/check.h"
#include "fault/fault_injector.h"

namespace fpdt::fault {

struct BackoffPolicy {
  int max_attempts = 5;
  double base_s = 200e-6;
  double multiplier = 2.0;

  double delay(int attempt) const {
    double d = base_s;
    for (int i = 0; i < attempt; ++i) d *= multiplier;
    return d;
  }
};

// Runs `body` up to policy.max_attempts times, swallowing TransientError.
// Returns true on success; false when attempts are exhausted (the caller
// degrades or escalates). Non-transient exceptions propagate untouched.
template <typename Fn>
bool retry_transient(const BackoffPolicy& policy, int rank, const std::string& label,
                     Fn&& body) {
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    try {
      body();
      return true;
    } catch (const TransientError&) {
      if (attempt + 1 >= policy.max_attempts) return false;
      FaultInjector& inj = FaultInjector::instance();
      inj.note_retry();
      inj.charge_backoff(rank, label, policy.delay(attempt));
    }
  }
  return false;
}

}  // namespace fpdt::fault
