#include "fault/watchdog.h"

#include <sstream>

#include "common/check.h"

namespace fpdt::fault {

namespace {

void report_pending(std::ostringstream& os, int rank, const runtime::Stream& stream) {
  if (stream.idle()) return;
  const std::vector<std::string> labels = stream.pending_labels();
  os << "watchdog: rank " << rank << " stream " << stream.name() << " has " << labels.size()
     << " unretired task(s):";
  for (const std::string& label : labels) os << " " << label;
  os << "\n";
}

}  // namespace

void check_step_quiescent(core::FpdtEnv& env) {
  std::ostringstream os;
  for (int r = 0; r < env.world(); ++r) {
    runtime::Device& dev = env.device(r);
    // Deferred timing spans legitimately accumulate on the compute stream
    // (phase markers, backoff charges); drain them before judging.
    dev.compute_stream().synchronize();
    report_pending(os, r, dev.h2d_stream());
    report_pending(os, r, dev.d2h_stream());
    if (dev.hbm().staging() != 0) {
      os << "watchdog: rank " << r << " HBM pool holds " << dev.hbm().staging()
         << " staged bytes with no in-flight transfer\n";
    }
  }
  if (env.host().pool().staging() != 0) {
    os << "watchdog: host pool holds " << env.host().pool().staging()
       << " staged bytes with no in-flight transfer\n";
  }
  const std::string diagnosis = os.str();
  if (!diagnosis.empty()) throw FpdtError(diagnosis);
}

// ---- Watchdog --------------------------------------------------------------

const char* health_name(RankHealth health) {
  switch (health) {
    case RankHealth::kHealthy: return "healthy";
    case RankHealth::kSlow: return "slow";
    case RankHealth::kDead: return "dead";
  }
  return "unknown";
}

Watchdog::Watchdog(int world, std::int64_t slow_after_steps)
    : world_(world),
      slow_after_steps_(slow_after_steps),
      progress_(static_cast<std::size_t>(world)) {
  FPDT_CHECK_GE(world, 1) << " watchdog world";
  FPDT_CHECK_GE(slow_after_steps, 0) << " watchdog slow threshold";
}

void Watchdog::heartbeat(int rank, std::int64_t step, double vtime) {
  FPDT_CHECK(rank >= 0 && rank < world_) << " watchdog heartbeat rank " << rank;
  std::lock_guard<std::mutex> lock(mutex_);
  Progress& p = progress_[static_cast<std::size_t>(rank)];
  if (p.dead) return;
  // Monotonic: a stale heartbeat (injected rankslow replays an old step)
  // never advances the record, it just fails to keep up with the front.
  if (step > p.step) {
    p.step = step;
    p.vtime = vtime;
  }
}

void Watchdog::mark_dead(int rank) {
  FPDT_CHECK(rank >= 0 && rank < world_) << " watchdog mark_dead rank " << rank;
  std::lock_guard<std::mutex> lock(mutex_);
  progress_[static_cast<std::size_t>(rank)].dead = true;
}

void Watchdog::revive(int rank) {
  FPDT_CHECK(rank >= 0 && rank < world_) << " watchdog revive rank " << rank;
  std::lock_guard<std::mutex> lock(mutex_);
  Progress& p = progress_[static_cast<std::size_t>(rank)];
  p.dead = false;
  // A rejoined rank restarts from the group's state; its stale pre-death
  // heartbeat must not read as "slow" on the very next verdict.
  p.step = front_step_locked();
}

Watchdog::Progress Watchdog::last_progress(int rank) const {
  FPDT_CHECK(rank >= 0 && rank < world_) << " watchdog last_progress rank " << rank;
  std::lock_guard<std::mutex> lock(mutex_);
  return progress_[static_cast<std::size_t>(rank)];
}

std::int64_t Watchdog::front_step_locked() const {
  std::int64_t front = 0;
  for (const Progress& p : progress_) {
    if (!p.dead && p.step > front) front = p.step;
  }
  return front;
}

RankHealth Watchdog::verdict_locked(int rank) const {
  const Progress& p = progress_[static_cast<std::size_t>(rank)];
  if (p.dead) return RankHealth::kDead;
  const std::int64_t step = p.step < 0 ? 0 : p.step;
  if (front_step_locked() - step > slow_after_steps_) return RankHealth::kSlow;
  return RankHealth::kHealthy;
}

RankHealth Watchdog::verdict(int rank) const {
  FPDT_CHECK(rank >= 0 && rank < world_) << " watchdog verdict rank " << rank;
  std::lock_guard<std::mutex> lock(mutex_);
  return verdict_locked(rank);
}

std::vector<int> Watchdog::healthy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (int r = 0; r < world_; ++r) {
    if (!progress_[static_cast<std::size_t>(r)].dead) out.push_back(r);
  }
  return out;
}

int Watchdog::alive_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const Progress& p : progress_) n += p.dead ? 0 : 1;
  return n;
}

std::string Watchdog::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  const std::int64_t front = front_step_locked();
  for (int r = 0; r < world_; ++r) {
    const RankHealth h = verdict_locked(r);
    if (h == RankHealth::kHealthy) continue;
    const Progress& p = progress_[static_cast<std::size_t>(r)];
    os << "rank " << r << ": " << health_name(h);
    if (h == RankHealth::kSlow) os << " (step " << (p.step < 0 ? 0 : p.step) << " vs front " << front << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace fpdt::fault
