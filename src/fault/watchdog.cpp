#include "fault/watchdog.h"

#include <sstream>

#include "common/check.h"

namespace fpdt::fault {

namespace {

void report_pending(std::ostringstream& os, int rank, const runtime::Stream& stream) {
  if (stream.idle()) return;
  const std::vector<std::string> labels = stream.pending_labels();
  os << "watchdog: rank " << rank << " stream " << stream.name() << " has " << labels.size()
     << " unretired task(s):";
  for (const std::string& label : labels) os << " " << label;
  os << "\n";
}

}  // namespace

void check_step_quiescent(core::FpdtEnv& env) {
  std::ostringstream os;
  for (int r = 0; r < env.world(); ++r) {
    runtime::Device& dev = env.device(r);
    // Deferred timing spans legitimately accumulate on the compute stream
    // (phase markers, backoff charges); drain them before judging.
    dev.compute_stream().synchronize();
    report_pending(os, r, dev.h2d_stream());
    report_pending(os, r, dev.d2h_stream());
    if (dev.hbm().staging() != 0) {
      os << "watchdog: rank " << r << " HBM pool holds " << dev.hbm().staging()
         << " staged bytes with no in-flight transfer\n";
    }
  }
  if (env.host().pool().staging() != 0) {
    os << "watchdog: host pool holds " << env.host().pool().staging()
       << " staged bytes with no in-flight transfer\n";
  }
  const std::string diagnosis = os.str();
  if (!diagnosis.empty()) throw FpdtError(diagnosis);
}

}  // namespace fpdt::fault
