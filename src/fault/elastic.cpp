#include "fault/elastic.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "comm/process_group.h"
#include "common/check.h"
#include "common/logging.h"
#include "nn/checkpoint_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/zero/reshard.h"
#include "tune/planner.h"

namespace fpdt::fault {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool bitwise_equal(double a, double b) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ab == bb;
}

void copy_file_bytes(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in) throw FpdtError("elastic: cannot read " + from);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  if (!out) throw FpdtError("elastic: cannot write " + to);
  out << in.rdbuf();
  if (!out) throw FpdtError("elastic: short write to " + to);
}

}  // namespace

ElasticWorldManager::ElasticWorldManager(ResilientTrainer& rt,
                                         std::map<std::int64_t, int> rejoins)
    : rt_(rt),
      // slow_after_steps = 0: one withheld heartbeat while the group advances
      // is already "slow" — the sharpest deterministic slow-vs-dead boundary.
      watchdog_(rt.options().world, /*slow_after_steps=*/0),
      initial_world_(rt.options().world),
      rejoins_(std::move(rejoins)) {
  obs::MetricsRegistry::global().gauge("elastic.epoch").set(static_cast<double>(epoch_));
}

void ElasticWorldManager::note(std::string line) {
  FPDT_LOG_WARN << "elastic: " << line;
  transcript_.push_back(std::move(line));
}

int ElasticWorldManager::global_of_ordinal(int ordinal) const {
  const std::vector<int> healthy = watchdog_.healthy();
  FPDT_CHECK(ordinal >= 0 && ordinal < rt_.world()) << " elastic ordinal " << ordinal;
  FPDT_CHECK_GE(static_cast<int>(healthy.size()), rt_.world())
      << " elastic: fewer healthy ranks than the active world";
  return healthy[static_cast<std::size_t>(ordinal)];
}

void ElasticWorldManager::quiesce() {
  FPDT_TRACE_SCOPE("elastic", "elastic.quiesce");
  core::FpdtEnv& env = rt_.trainer().env();
  std::size_t discarded = 0;
  for (int r = 0; r < env.world(); ++r) {
    runtime::Device& dev = env.device(r);
    for (runtime::Stream* s : {&dev.compute_stream(), &dev.h2d_stream(), &dev.d2h_stream()}) {
      discarded += s->pending_labels().size();
      s->discard_pending();
    }
  }
  std::ostringstream os;
  os << "quiesce: discarded " << discarded << " in-flight task(s) across " << env.world()
     << " rank(s)";
  note(os.str());
}

namespace {

// Largest divisor of n no bigger than cap (>= 1); the shrink rule for both
// grid axes: keep as much of the operator's grid as the new world allows.
int largest_divisor_leq(int n, int cap) {
  for (int d = std::min(n, cap); d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

}  // namespace

WorldPlan ElasticWorldManager::plan_world(int max_world) const {
  const ResilientOptions& o = rt_.options();
  for (int w = std::min(max_world, initial_world_); w >= 1; --w) {
    // Ulysses head scatter: every rank must own whole (KV-)heads.
    if (o.model.n_head % w != 0) continue;
    if (o.model.n_kv_head > 0 && o.model.n_kv_head % w != 0) continue;
    tune::TuneRequest req;
    req.model = o.model;
    req.world = w;
    req.s_global = rt_.tokens_per_step();
    if (o.hbm_capacity_bytes > 0) req.hbm_budget_bytes = o.hbm_capacity_bytes;
    // Re-plan only the chunking: every other knob keeps its live setting so
    // the resumed run stays on the configuration the operator chose.
    req.space.zero_stages = {std::max(o.cfg.zero_stage, 0)};
    req.space.ffn_chunk_multipliers = {o.cfg.ffn_chunk_multiplier};
    req.space.lm_head_chunks = {o.cfg.lm_head_chunks};
    req.space.offload = {o.cfg.offload};
    req.space.double_buffer = {o.cfg.double_buffer};
    req.space.cache_fwd = {o.cfg.cache_forward_outputs};
    // Re-plan the 2D grid at the new world: shrink ranks-per-node to the
    // largest divisor of w, then the head axis to the largest degree that
    // still divides the node, the world and the head count
    // (parallel/grid2d.h's validity rules).
    int rpn = o.cfg.ranks_per_node > 0 ? largest_divisor_leq(w, o.cfg.ranks_per_node) : 0;
    int hd = 0;
    if (o.cfg.head_degree > 0) {
      for (int h = std::min(o.cfg.head_degree, w); h >= 1; --h) {
        if (w % h != 0 || o.model.n_head % h != 0) continue;
        if (rpn > 0 && rpn % h != 0) continue;
        hd = h;
        break;
      }
    }
    for (const tune::PlannedCandidate& pc : tune::Planner(req).plan()) {
      if (pc.pruned) continue;
      return WorldPlan{w, pc.cand.cfg.chunks_per_rank, rpn, hd, pc.cand.label};
    }
  }
  throw FpdtError("elastic: no valid world <= " + std::to_string(max_world) + " for " +
                  std::to_string(rt_.tokens_per_step()) + " tokens/step and " +
                  std::to_string(o.model.n_head) + " heads");
}

void ElasticWorldManager::reshard_to(const WorldPlan& plan, int exclude_ordinal) {
  FPDT_TRACE_SCOPE("elastic", "elastic.reshard");
  const ResilientOptions& o = rt_.options();
  FPDT_CHECK(!o.checkpoint_path.empty()) << " elastic reshard needs a checkpoint path";
  const std::string twin = o.checkpoint_path + ".reshard";
  const int cur = rt_.world();
  if (o.cfg.zero_stage >= 1) {
    nn::ShardedAdamState shards;
    nn::ShardedRestore sr = nn::load_sharded_training_state(rt_.model(), shards, cur,
                                                            o.cfg.zero_stage,
                                                            o.checkpoint_path);
    zero::ParamElems numels;
    rt_.model().visit_params([&](nn::Param& p) { numels[p.name] = p.value.numel(); });
    const zero::ShardManifest manifest = zero::manifest_of(shards, numels, cur);

    // Digest agreement over the healthy subset: every survivor contributes
    // the manifest digest of its view of the coordinated snapshot; any
    // disagreement means a diverged or corrupt replica and the reshard must
    // not proceed.
    std::vector<int> members;
    for (int r = 0; r < cur; ++r) {
      if (r != exclude_ordinal) members.push_back(r);
    }
    if (!members.empty()) {
      const std::uint64_t digest = manifest.digest();
      const auto hi = static_cast<std::uint32_t>(digest >> 32);
      const auto lo = static_cast<std::uint32_t>(digest);
      Tensor local = Tensor::zeros({2});
      std::memcpy(&local.data()[0], &hi, sizeof(hi));
      std::memcpy(&local.data()[1], &lo, sizeof(lo));
      std::vector<Tensor> per;
      per.reserve(members.size());
      for (std::size_t i = 0; i < members.size(); ++i) per.push_back(local.clone());
      comm::GroupView view(rt_.trainer().env().pg(), members);
      const std::vector<Tensor> gathered = view.all_gather(per);
      for (const Tensor& g : gathered) {
        for (std::int64_t i = 0; i < g.numel(); i += 2) {
          if (std::memcmp(&g.data()[i], &local.data()[0], sizeof(float)) != 0 ||
              std::memcmp(&g.data()[i + 1], &local.data()[1], sizeof(float)) != 0) {
            throw FpdtError("elastic: survivors disagree on the shard manifest digest");
          }
        }
      }
    }

    const nn::ShardedAdamState out =
        zero::reshard_adam_state(shards, numels, cur, plan.world);
    // The live checkpoint moves to the new geometry; the `.reshard` copy is
    // the frozen restore point the bitwise twin starts from.
    for (const std::string& path : {o.checkpoint_path, twin}) {
      nn::ShardedAdamState copy = out;
      nn::save_sharded_training_state(rt_.model(), copy, sr.adam_step, plan.world,
                                      o.cfg.zero_stage, sr.state, path);
    }
    std::ostringstream os;
    os << "reshard: zero" << o.cfg.zero_stage << " moment shards " << cur << " -> "
       << plan.world << " (" << manifest.to_string() << ", " << members.size()
       << " survivor(s) agreed)";
    note(os.str());
  } else {
    // Replicated optimizer state (FPDTTRN1) is world-invariant; the twin
    // restore point is a byte copy.
    copy_file_bytes(o.checkpoint_path, twin);
    note("reshard: replicated optimizer state is world-invariant; snapshot copied for twin");
  }
  obs::MetricsRegistry::global().counter("elastic.reshards").add(1);
  reshard_step_ = rt_.step();
  reshard_world_ = plan.world;
  reshard_chunks_ = plan.chunks_per_rank;
}

WorldPlan ElasticWorldManager::on_rank_lost(const comm::CommResult& res) {
  const auto t0 = std::chrono::steady_clock::now();
  const int cur = rt_.world();
  int ordinal = res.rank;
  if (ordinal < 0 || ordinal >= cur) ordinal = cur - 1;
  const int global = global_of_ordinal(ordinal);
  quiesce();
  watchdog_.mark_dead(global);
  ++epoch_;
  obs::MetricsRegistry::global().gauge("elastic.epoch").set(static_cast<double>(epoch_));
  const int alive = watchdog_.alive_count();
  {
    std::ostringstream os;
    os << "epoch " << epoch_ << ": ranklost rank " << global << " (ordinal " << ordinal
       << ") at step " << rt_.step() << " [" << res.detail << "]; alive " << alive << "/"
       << initial_world_;
    note(os.str());
  }
  if (alive < 1) throw FpdtError("elastic: no surviving ranks");
  const WorldPlan plan = plan_world(alive);
  {
    std::ostringstream os;
    os << "plan: world " << cur << " -> " << plan.world << " (chunks_per_rank "
       << plan.chunks_per_rank << ", candidate " << plan.label << ")";
    if (plan.ranks_per_node > 0 || plan.head_degree > 0) {
      os << " grid rpn=" << plan.ranks_per_node << " hd=" << plan.head_degree;
    }
    note(os.str());
  }
  reshard_to(plan, ordinal);
  const double dt = seconds_since(t0);
  recovery_seconds_ += dt;
  obs::MetricsRegistry::global().histogram("elastic.recovery_s").observe(dt);
  return plan;
}

void ElasticWorldManager::on_partition(const comm::CommResult& res) {
  const auto t0 = std::chrono::steady_clock::now();
  quiesce();
  ++epoch_;
  obs::MetricsRegistry::global().gauge("elastic.epoch").set(static_cast<double>(epoch_));
  std::ostringstream os;
  os << "epoch " << epoch_ << ": netpart at step " << rt_.step() << " [" << res.detail
     << "]; membership unchanged, replaying the step at world " << rt_.world();
  note(os.str());
  const double dt = seconds_since(t0);
  recovery_seconds_ += dt;
  obs::MetricsRegistry::global().histogram("elastic.recovery_s").observe(dt);
}

std::optional<WorldPlan> ElasticWorldManager::on_step_complete(std::int64_t step) {
  FaultInjector& inj = FaultInjector::instance();
  core::FpdtEnv& env = rt_.trainer().env();
  const int cur = rt_.world();
  const std::vector<int> healthy = watchdog_.healthy();
  FPDT_CHECK_GE(static_cast<int>(healthy.size()), cur) << " elastic heartbeat round";
  for (int ord = 0; ord < cur; ++ord) {
    const int global = healthy[static_cast<std::size_t>(ord)];
    if (faults_enabled() && inj.should_fail(Site::kRankSlow, ord)) {
      std::ostringstream os;
      os << "rankslow: rank " << global << " withheld its heartbeat for step " << step;
      note(os.str());
      continue;
    }
    watchdog_.heartbeat(global, step, env.device(ord).compute_stream().tail_time());
  }
  for (int ord = 0; ord < cur; ++ord) {
    const int global = healthy[static_cast<std::size_t>(ord)];
    if (watchdog_.verdict(global) != RankHealth::kSlow) continue;
    const Watchdog::Progress p = watchdog_.last_progress(global);
    std::ostringstream os;
    os << "watchdog: rank " << global << " slow (step " << (p.step < 0 ? 0 : p.step)
       << " vs front " << step << ") — tolerated, membership unchanged";
    note(os.str());
  }

  const auto it = rejoins_.find(step);
  if (it == rejoins_.end()) return std::nullopt;
  int revived = 0;
  for (int g = 0; g < initial_world_ && revived < it->second; ++g) {
    if (watchdog_.last_progress(g).dead) {
      watchdog_.revive(g);
      ++revived;
    }
  }
  if (revived == 0) {
    std::ostringstream os;
    os << "rejoin: scheduled at step " << step << " but no dead ranks to revive";
    note(os.str());
    return std::nullopt;
  }
  const auto t0 = std::chrono::steady_clock::now();
  ++epoch_;
  obs::MetricsRegistry::global().gauge("elastic.epoch").set(static_cast<double>(epoch_));
  {
    std::ostringstream os;
    os << "epoch " << epoch_ << ": rejoin " << revived << " rank(s) after step " << step
       << "; alive " << watchdog_.alive_count() << "/" << initial_world_;
    note(os.str());
  }
  const WorldPlan plan = plan_world(watchdog_.alive_count());
  if (plan.world == cur) {
    std::ostringstream os;
    os << "rejoin: world stays at " << cur << " (rejoined ranks held as spares)";
    note(os.str());
    return std::nullopt;
  }
  const ResilientOptions& o = rt_.options();
  if (o.checkpoint_path.empty() || step % o.checkpoint_every != 0) {
    note("rejoin: no fresh coordinated snapshot at this step; growth deferred");
    return std::nullopt;
  }
  {
    std::ostringstream os;
    os << "plan: world " << cur << " -> " << plan.world << " (chunks_per_rank "
       << plan.chunks_per_rank << ", candidate " << plan.label << ")";
    if (plan.ranks_per_node > 0 || plan.head_degree > 0) {
      os << " grid rpn=" << plan.ranks_per_node << " hd=" << plan.head_degree;
    }
    note(os.str());
  }
  reshard_to(plan, /*exclude_ordinal=*/-1);
  const double dt = seconds_since(t0);
  recovery_seconds_ += dt;
  obs::MetricsRegistry::global().histogram("elastic.recovery_s").observe(dt);
  return plan;
}

// ---- fpdt elastic ----------------------------------------------------------

namespace {

// Strips `rejoin:step=S[,ranks=N]` clauses out of the scenario (they are a
// membership schedule, not injectable faults) and returns them as a
// step -> count map; everything else is re-joined for the injector.
std::map<std::int64_t, int> split_scenario(const std::string& scenario,
                                           std::string* injector_spec) {
  std::map<std::int64_t, int> rejoins;
  std::string spec;
  std::stringstream ss(scenario);
  std::string clause;
  while (std::getline(ss, clause, ';')) {
    const std::size_t a = clause.find_first_not_of(" \t");
    if (a == std::string::npos) continue;
    const std::size_t b = clause.find_last_not_of(" \t");
    clause = clause.substr(a, b - a + 1);
    if (clause.rfind("rejoin:", 0) != 0) {
      if (!spec.empty()) spec += ';';
      spec += clause;
      continue;
    }
    std::int64_t step = -1;
    int ranks = 1;
    std::stringstream args(clause.substr(7));
    std::string kv;
    while (std::getline(args, kv, ',')) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) throw FpdtError("elastic: bad rejoin arg '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      const long long value = std::stoll(kv.substr(eq + 1));
      if (key == "step") {
        step = value;
      } else if (key == "ranks") {
        ranks = static_cast<int>(value);
      } else {
        throw FpdtError("elastic: unknown rejoin key '" + key + "'");
      }
    }
    if (step < 0) throw FpdtError("elastic: rejoin clause needs step=");
    if (ranks < 1) throw FpdtError("elastic: rejoin needs ranks >= 1");
    rejoins[step] += ranks;
  }
  *injector_spec = spec;
  return rejoins;
}

void remove_run_files(const std::string& base) {
  for (const std::string& suffix : {"", ".reshard", ".twin", ".clean"}) {
    const std::string p = base + suffix;
    std::remove(p.c_str());
    std::remove((p + ".tmp").c_str());
  }
}

}  // namespace

std::string ElasticResult::report(int requested_steps) const {
  std::ostringstream os;
  os.precision(17);
  os << "elastic: completed " << steps_completed << "/" << requested_steps << " steps\n"
     << "elastic: epoch " << final_epoch << ", world " << initial_world << " -> "
     << final_world << "\n"
     << "elastic: " << stats.to_string() << "\n";
  for (const std::string& line : transcript) os << "elastic:   " << line << "\n";
  if (resharded()) {
    os << "elastic: reshard at step " << reshard_step << " -> world " << reshard_world
       << " (chunks_per_rank " << reshard_chunks << ")\n";
  }
  os << "elastic: recovery wall_s=" << recovery_wall_s << "\n";
  if (!twin_losses.empty() || resharded()) {
    os << "elastic: twin verified " << twin_losses.size() << " step(s)";
    if (resharded()) os << " from step " << reshard_step << " at world " << reshard_world;
    os << ": " << (twin_bitwise_match ? "match bitwise" : "MISMATCH") << "\n";
  }
  if (!losses.empty() && !twin_losses.empty()) {
    os << "elastic: final loss " << losses.back() << " twin " << twin_losses.back() << "\n";
  }
  return os.str();
}

ElasticResult run_elastic(const ElasticOptions& opt) {
  FPDT_CHECK_GE(opt.steps, 1) << " elastic needs at least one step";
  FaultInjector& inj = FaultInjector::instance();
  ElasticResult result;
  result.initial_world = opt.world;

  std::string spec;
  std::map<std::int64_t, int> rejoins = split_scenario(opt.scenario, &spec);

  ResilientOptions ro;
  ro.world = opt.world;
  ro.cfg.chunks_per_rank = opt.chunks;
  ro.cfg.zero_stage = opt.zero_stage;
  ro.cfg.ranks_per_node = opt.ranks_per_node;
  ro.cfg.head_degree = opt.head_degree;
  ro.chunk_tokens = opt.chunk_tokens;
  ro.hbm_capacity_bytes = opt.hbm_capacity_bytes;
  ro.model_seed = opt.seed;
  ro.model = opt.model;
  ro.checkpoint_path = opt.checkpoint_path;
  ro.elastic = true;
  ro.rejoin_at = rejoins;

  if (!spec.empty()) inj.configure(spec);
  {
    ResilientTrainer rt(ro);
    while (rt.step() < opt.steps) {
      const StepOutcome o = rt.train_step();
      if (static_cast<std::size_t>(rt.step()) > result.losses.size()) {
        result.losses.resize(static_cast<std::size_t>(rt.step()));
      }
      result.losses[static_cast<std::size_t>(rt.step()) - 1] = o.loss;
    }
    ElasticWorldManager* em = rt.elastic();
    result.transcript = em->transcript();
    result.final_epoch = em->epoch();
    result.final_world = rt.world();
    result.reshard_step = em->reshard_step();
    result.reshard_world = em->reshard_world();
    result.reshard_chunks = em->reshard_chunks();
    result.recovery_wall_s = em->recovery_seconds();
  }
  result.steps_completed = static_cast<std::int64_t>(result.losses.size());
  result.stats = inj.stats();
  inj.disable();

  if (opt.verify_twin && result.survived(opt.steps)) {
    if (result.resharded()) {
      // Fresh run at the reduced world restored from the frozen `.reshard`
      // snapshot: every replayed step must match the elastic run bitwise.
      ResilientOptions tw = ro;
      tw.world = result.reshard_world;
      tw.cfg.chunks_per_rank = result.reshard_chunks;
      const std::int64_t s_global =
          static_cast<std::int64_t>(opt.world) * opt.chunks * opt.chunk_tokens;
      tw.chunk_tokens = s_global / (result.reshard_world * result.reshard_chunks);
      tw.elastic = false;
      tw.rejoin_at.clear();
      tw.restore_from = opt.checkpoint_path + ".reshard";
      tw.checkpoint_path = opt.checkpoint_path + ".twin";
      ResilientTrainer twin(tw);
      while (twin.step() < opt.steps) {
        result.twin_losses.push_back(twin.train_step().loss);
      }
      result.twin_bitwise_match = true;
      for (std::size_t i = 0; i < result.twin_losses.size(); ++i) {
        const std::size_t at = static_cast<std::size_t>(result.reshard_step) + i;
        if (at >= result.losses.size() ||
            !bitwise_equal(result.losses[at], result.twin_losses[i])) {
          result.twin_bitwise_match = false;
          break;
        }
      }
    } else {
      // No membership change survived to the end (netpart/rankslow only):
      // a fault-free clean twin must match every step bitwise.
      ResilientOptions tw = ro;
      tw.rejoin_at.clear();
      tw.checkpoint_path = opt.checkpoint_path + ".clean";
      ResilientTrainer twin(tw);
      while (twin.step() < opt.steps) {
        result.twin_losses.push_back(twin.train_step().loss);
      }
      result.twin_bitwise_match = result.twin_losses.size() == result.losses.size();
      for (std::size_t i = 0; result.twin_bitwise_match && i < result.losses.size(); ++i) {
        result.twin_bitwise_match = bitwise_equal(result.losses[i], result.twin_losses[i]);
      }
    }
  }

  if (!opt.keep_checkpoint && !opt.checkpoint_path.empty()) {
    remove_run_files(opt.checkpoint_path);
  }
  return result;
}

}  // namespace fpdt::fault
