#include "fault/resilient_trainer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "comm/process_group.h"
#include "common/check.h"
#include "common/logging.h"
#include "core/chunk_schedule.h"
#include "fault/elastic.h"
#include "fault/watchdog.h"
#include "nn/checkpoint_io.h"
#include "nn/model_config.h"
#include "obs/metrics.h"

namespace fpdt::fault {

ResilientTrainer::ResilientTrainer(const ResilientOptions& opt)
    : opt_(opt),
      s_global_(static_cast<std::int64_t>(opt.world) * opt.cfg.chunks_per_rank *
                opt.chunk_tokens),
      model_(std::make_unique<nn::Model>(opt.model, opt.model_seed)),
      adam_(opt.lr),
      corpus_(opt.model.vocab, opt.data_seed) {
  FPDT_CHECK_GE(opt_.max_step_retries, 1) << " resilient step retry budget";
  rebuild_trainer();
  // The elastic twin starts from a frozen reshard restore point rather than
  // fresh initialization.
  if (!opt_.restore_from.empty()) restore_snapshot(opt_.restore_from);
  if (opt_.elastic) elastic_ = std::make_unique<ElasticWorldManager>(*this, opt_.rejoin_at);
  // Seed snapshot: restore-and-replay must work even when the very first
  // step dies.
  if (!opt_.checkpoint_path.empty()) save_snapshot(opt_.checkpoint_path);
}

ResilientTrainer::~ResilientTrainer() = default;

void ResilientTrainer::rebuild_trainer() {
  // The sharded optimizer is bound to the trainer's env (its collectives,
  // streams, pools); carry its state across the rebuild and re-bind it.
  zero::ShardedAdamState saved_shards;
  std::int64_t saved_t = 0;
  if (zopt_ != nullptr) {
    saved_shards = std::move(zopt_->mutable_shards());
    saved_t = zopt_->step_count();
    zopt_.reset();  // before its env dies with the old trainer
  }
  trainer_ = std::make_unique<core::FpdtTrainer>(*model_, opt_.world, opt_.cfg,
                                                 opt_.hbm_capacity_bytes);
  if (opt_.cfg.zero_stage >= 1) {
    zopt_ = std::make_unique<zero::ShardedOptimizer>(
        trainer_->env(), zero::ZeroConfig{opt_.cfg.zero_stage}, opt_.lr);
    zopt_->set_shards(std::move(saved_shards));
    zopt_->set_step_count(saved_t);
  }
}

void ResilientTrainer::double_chunks_or_rethrow() {
  const std::int64_t u2 = opt_.cfg.chunks_per_rank * 2;
  const std::int64_t s_local = s_global_ / opt_.world;
  if (s_local % u2 != 0) {
    throw FpdtError("OOM at chunks_per_rank " + std::to_string(opt_.cfg.chunks_per_rank) +
                    " and the local sequence (" + std::to_string(s_local) +
                    " tokens) cannot be split into " + std::to_string(u2) + " chunks");
  }
  // The doubled schedule must still be legal before committing to it.
  core::ChunkSchedule::forward(u2, opt_.cfg.offload, opt_.cfg.double_buffer).check_legal();
  core::ChunkSchedule::backward(u2, opt_.cfg.offload, opt_.cfg.double_buffer).check_legal();
  FPDT_LOG_WARN << "OOM: degrading chunks_per_rank " << opt_.cfg.chunks_per_rank << " -> " << u2
                << " and retrying the step";
  opt_.cfg.chunks_per_rank = u2;
}

void ResilientTrainer::apply_world_plan(const WorldPlan& plan) {
  FPDT_CHECK_GE(plan.world, 1) << " elastic world plan";
  FPDT_CHECK_EQ(s_global_ % (plan.world * plan.chunks_per_rank), 0)
      << " elastic plan must preserve s_global divisibility";
  opt_.world = plan.world;
  opt_.cfg.chunks_per_rank = plan.chunks_per_rank;
  // Re-planned grid shape rides along (0/0 when the run never had one);
  // the rebuilt env routes collectives over the new topology.
  opt_.cfg.ranks_per_node = plan.ranks_per_node;
  opt_.cfg.head_degree = plan.head_degree;
  opt_.chunk_tokens = s_global_ / (plan.world * plan.chunks_per_rank);
  // The checkpoint was re-sharded to plan.world before this call; restoring
  // rebuilds the trainer at the new world and installs the re-split shards.
  restore_snapshot(opt_.checkpoint_path);
}

StepOutcome ResilientTrainer::train_step() {
  StepOutcome out;
  FaultInjector& inj = FaultInjector::instance();
  if (inj.enabled()) inj.begin_step(step_);
  std::vector<std::int32_t> tokens = corpus_.sample(s_global_ + 1);

  for (int attempt = 1; attempt <= opt_.max_step_retries; ++attempt) {
    out.attempts = attempt;
    try {
      // A retried attempt may have left partial gradient accumulation
      // behind; zero is also the clean-path state, so this never perturbs
      // an undisturbed run.
      model_->zero_grads();
      const double loss = trainer_->train_step_grads(tokens);
      if (faults_enabled() && inj.should_fail(Site::kCrash, -1)) {
        throw FpdtError("injected crash: step " + std::to_string(step_) +
                        " lost before the optimizer update");
      }
      const auto walk = [&](const nn::ParamVisitor& v) { model_->visit_params(v); };
      if (zopt_ != nullptr) {
        zopt_->step(walk);
      } else {
        adam_.step(walk);
      }
      check_step_quiescent(trainer_->env());
      trainer_->env().synchronize_streams();
      out.loss = loss;
      ++step_;
      if (inj.enabled()) inj.reconcile_step();
      if (!opt_.checkpoint_path.empty() && step_ % opt_.checkpoint_every == 0) {
        save_snapshot(opt_.checkpoint_path);
      }
      if (elastic_ != nullptr) {
        // Heartbeats + scheduled rejoins; a rejoin that grows the world
        // hands back a plan with the checkpoint already re-sharded.
        const std::optional<WorldPlan> grow = elastic_->on_step_complete(step_);
        if (grow.has_value()) {
          apply_world_plan(*grow);
          out.resharded = true;
        }
      }
      out.world = opt_.world;
      return out;
    } catch (const OutOfMemoryError& e) {
      if (attempt >= opt_.max_step_retries) throw;
      FPDT_LOG_WARN << "step " << step_ << " hit OOM (" << e.what() << ")";
      double_chunks_or_rethrow();
      rebuild_trainer();
      out.oom_degraded = true;
      if (inj.enabled()) inj.note_degraded("chunk_double");
      // Same tokens, finer chunk schedule.
    } catch (const comm::CommError& e) {
      if (attempt >= opt_.max_step_retries || opt_.checkpoint_path.empty()) throw;
      const comm::CommResult& res = e.result();
      if (elastic_ != nullptr && res.code == comm::CommErrc::kRankLost) {
        FPDT_LOG_WARN << "step " << step_ << " lost rank " << res.rank << " ("
                      << res.detail << "); re-sharding to a smaller world";
        apply_world_plan(elastic_->on_rank_lost(res));
        out.resharded = true;
      } else {
        // A partition heals at step scope (quiesce + replay, same world);
        // without the elastic layer every CommError degrades to the generic
        // restore-and-replay rung.
        if (elastic_ != nullptr && res.code == comm::CommErrc::kPartitioned) {
          elastic_->on_partition(res);
        }
        FPDT_LOG_WARN << "step " << step_ << " collective failed (" << e.what()
                      << "); restoring last snapshot and replaying";
        restore_snapshot(opt_.checkpoint_path);
      }
      out.restored = true;
      tokens = corpus_.sample(s_global_ + 1);
      if (inj.enabled()) inj.begin_step(step_);
    } catch (const FpdtError& e) {
      if (attempt >= opt_.max_step_retries || opt_.checkpoint_path.empty()) throw;
      FPDT_LOG_WARN << "step " << step_ << " failed (" << e.what()
                    << "); restoring last snapshot and replaying";
      restore_snapshot(opt_.checkpoint_path);
      out.restored = true;
      // The snapshot rewound the data stream (possibly several steps, with
      // checkpoint_every > 1): re-sample the step it points at.
      tokens = corpus_.sample(s_global_ + 1);
      if (inj.enabled()) inj.begin_step(step_);
    }
  }
  throw FpdtError("resilient step retry budget exhausted at step " + std::to_string(step_));
}

void ResilientTrainer::save_snapshot(const std::string& path) {
  nn::TrainingState ts;
  ts.step = step_;
  ts.streams["corpus"] = corpus_.save_state();
  if (zopt_ != nullptr) {
    nn::save_sharded_training_state(*model_, zopt_->mutable_shards(), zopt_->step_count(),
                                    opt_.world, opt_.cfg.zero_stage, ts, path);
  } else {
    nn::save_training_state(*model_, adam_, ts, path);
  }
}

void ResilientTrainer::restore_snapshot(const std::string& path) {
  nn::TrainingState ts;
  if (zopt_ != nullptr) {
    nn::ShardedAdamState shards;
    nn::ShardedRestore sr = nn::load_sharded_training_state(
        *model_, shards, opt_.world, opt_.cfg.zero_stage, path);
    ts = std::move(sr.state);
    step_ = ts.step;
    rebuild_trainer();  // re-bind zopt_ to the fresh env...
    zopt_->set_shards(std::move(shards));  // ...then install the restored shards
    zopt_->set_step_count(sr.adam_step);
  } else {
    ts = nn::load_training_state(*model_, adam_, path);
    step_ = ts.step;
    rebuild_trainer();
  }
  auto it = ts.streams.find("corpus");
  FPDT_CHECK(it != ts.streams.end()) << " snapshot missing the corpus stream state";
  corpus_.load_state(it->second);
  obs::MetricsRegistry::global().counter("fault.restored").add(1);
}

// ---- fpdt chaos ------------------------------------------------------------

namespace {

bool bitwise_equal(double a, double b) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ab == bb;
}

}  // namespace

std::string ChaosResult::report(int requested_steps) const {
  std::ostringstream os;
  os.precision(17);
  os << "chaos: completed " << steps_completed << "/" << requested_steps << " steps\n"
     << "chaos: " << stats.to_string() << "\n";
  if (any_restored) os << "chaos: restore-and-replay engaged\n";
  if (math_degraded) {
    os << "chaos: OOM chunk-doubling changed the reduction order; verifying approximately\n";
  }
  if (resharded) {
    os << "chaos: rank loss re-sharded to a smaller world; verifying approximately"
          " (fpdt elastic is the bitwise check)\n";
  }
  if (!clean_losses.empty() && !losses.empty()) {
    os << "chaos: final loss " << losses.back() << " clean " << clean_losses.back() << " ";
    if (loss_bitwise_match) {
      os << "match bitwise\n";
    } else if ((math_degraded || resharded) &&
               loss_abs_diff <= 1e-2 * std::max(1.0, std::abs(clean_losses.back()))) {
      os << "match approx (|d|=" << loss_abs_diff << ")\n";
    } else {
      os << "MISMATCH (|d|=" << loss_abs_diff << ")\n";
    }
  }
  return os.str();
}

ChaosResult run_chaos(const ChaosOptions& opt) {
  FPDT_CHECK_GE(opt.steps, 1) << " chaos needs at least one step";
  FaultInjector& inj = FaultInjector::instance();
  ChaosResult result;

  const std::string clean_ckpt =
      opt.checkpoint_path.empty() ? std::string() : opt.checkpoint_path + ".clean";
  auto run_once = [&](const std::string& ckpt, std::vector<double>& losses,
                      bool* math_degraded, bool* restored, bool* resharded) {
    ResilientOptions ro;
    ro.world = opt.world;
    ro.cfg.chunks_per_rank = opt.chunks;
    ro.cfg.zero_stage = opt.zero_stage;
    ro.chunk_tokens = opt.chunk_tokens;
    ro.hbm_capacity_bytes = opt.hbm_capacity_bytes;
    ro.model_seed = opt.seed;
    ro.checkpoint_path = ckpt;
    // ranklost in a chaos spec shrinks the world instead of failing the run.
    ro.elastic = true;
    ResilientTrainer rt(ro);
    while (rt.step() < opt.steps) {
      const StepOutcome o = rt.train_step();
      if (static_cast<std::size_t>(rt.step()) > losses.size()) {
        losses.resize(static_cast<std::size_t>(rt.step()));
      }
      // A restore-and-replay rewinds and overwrites; the final vector holds
      // each step's surviving loss.
      losses[static_cast<std::size_t>(rt.step()) - 1] = o.loss;
      if (math_degraded != nullptr && o.oom_degraded) *math_degraded = true;
      if (restored != nullptr && o.restored) *restored = true;
      if (resharded != nullptr && o.resharded) *resharded = true;
    }
  };

  if (!opt.spec.empty()) inj.configure(opt.spec);
  run_once(opt.checkpoint_path, result.losses, &result.math_degraded, &result.any_restored,
           &result.resharded);
  result.steps_completed = static_cast<std::int64_t>(result.losses.size());
  result.stats = inj.stats();
  inj.disable();

  if (opt.verify_against_clean) {
    run_once(clean_ckpt, result.clean_losses, nullptr, nullptr, nullptr);
    if (!result.losses.empty() && !result.clean_losses.empty()) {
      result.loss_bitwise_match = bitwise_equal(result.losses.back(), result.clean_losses.back());
      result.loss_abs_diff = std::abs(result.losses.back() - result.clean_losses.back());
    }
  }

  if (!opt.keep_checkpoint) {
    for (const std::string& p : {opt.checkpoint_path, clean_ckpt}) {
      if (p.empty()) continue;
      for (const std::string& suffix : {"", ".tmp", ".reshard", ".reshard.tmp"}) {
        std::remove((p + suffix).c_str());
      }
    }
  }
  return result;
}

}  // namespace fpdt::fault
