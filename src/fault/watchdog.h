// End-of-step watchdog: detects work that should have retired but didn't.
//
// After a training step every chunk migration must have retired — the
// block executors drain their prefetchers before returning — and no pool
// may still hold staging bytes for an in-flight transfer. A violation means
// a lost wait edge or an abandoned closure: silent corruption waiting for
// the next step. The watchdog turns it into a diagnostic naming the stuck
// rank, stream and chunk key (transfer task labels embed the key:
// "fetch.khat.0.1", "offload.vhat.2.0").
#pragma once

#include "core/fpdt_env.h"

namespace fpdt::fault {

// Drains each rank's compute stream (deferred timing spans are expected
// there), then throws FpdtError if any transfer stream still holds
// unretired tasks or any pool still carries staging bytes. Returns normally
// on a quiescent step.
void check_step_quiescent(core::FpdtEnv& env);

}  // namespace fpdt::fault
