// Watchdogs: end-of-step quiescence checking and per-rank liveness.
//
// check_step_quiescent detects work that should have retired but didn't.
// After a training step every chunk migration must have retired — the
// block executors drain their prefetchers before returning — and no pool
// may still hold staging bytes for an in-flight transfer. A violation means
// a lost wait edge or an abandoned closure: silent corruption waiting for
// the next step. The watchdog turns it into a diagnostic naming the stuck
// rank, stream and chunk key (transfer task labels embed the key:
// "fetch.khat.0.1", "offload.vhat.2.0").
//
// The Watchdog class is the liveness side: each rank reports a heartbeat
// (step counter + stream virtual time) once per step, and the elastic
// membership layer (fault/elastic.h) queries per-rank last_progress to
// tell a *slow* rank from a *dead* one — the distinction that decides
// "wait" vs "evict and re-shard". Verdicts are pure functions of the
// recorded heartbeats (no wall clock), so a churn scenario produces the
// same verdict sequence on every run.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/fpdt_env.h"

namespace fpdt::fault {

// Drains each rank's compute stream (deferred timing spans are expected
// there), then throws FpdtError if any transfer stream still holds
// unretired tasks or any pool still carries staging bytes. Returns normally
// on a quiescent step.
void check_step_quiescent(core::FpdtEnv& env);

// Per-rank liveness verdict.
enum class RankHealth {
  kHealthy,  // heartbeat within slow_after_steps of the group's front
  kSlow,     // heartbeat stale but the rank is not marked dead — tolerate
  kDead,     // explicitly marked lost (ranklost event) — evict and re-shard
};

const char* health_name(RankHealth health);

class Watchdog {
 public:
  // `slow_after_steps`: a rank whose last heartbeat step trails the most
  // advanced member by more than this is judged slow.
  explicit Watchdog(int world, std::int64_t slow_after_steps = 1);

  int world() const { return world_; }

  // Rank r made progress: it completed `step` with its compute stream at
  // virtual time `vtime`. Heartbeats from dead ranks are ignored (a zombie
  // does not rejoin by pinging; revive() is the explicit path back).
  void heartbeat(int rank, std::int64_t step, double vtime);

  // Membership events from the elastic layer.
  void mark_dead(int rank);
  void revive(int rank);

  // Last recorded progress of rank r. step == -1 means "never heard from"
  // (treated as step 0 progress for verdicts until the first heartbeat).
  struct Progress {
    std::int64_t step = -1;
    double vtime = 0.0;
    bool dead = false;
  };
  Progress last_progress(int rank) const;

  // Dead if marked dead; slow if the heartbeat trails the group's most
  // advanced live member by more than slow_after_steps; healthy otherwise.
  RankHealth verdict(int rank) const;

  // Ranks not marked dead, ascending.
  std::vector<int> healthy() const;
  int alive_count() const;

  // One line per non-healthy rank ("rank 2: slow (step 1 vs front 3)").
  std::string summary() const;

 private:
  RankHealth verdict_locked(int rank) const;
  std::int64_t front_step_locked() const;

  mutable std::mutex mutex_;
  int world_;
  std::int64_t slow_after_steps_;
  std::vector<Progress> progress_;
};

}  // namespace fpdt::fault
