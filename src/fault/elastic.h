// Elastic world membership: survive rank loss, node churn and network
// partitions with coordinated re-sharding.
//
// ElasticWorldManager owns the group's membership state: a monotonic epoch
// counter (bumped on every membership or fabric event), a Watchdog tracking
// per-rank heartbeats in the *initial* world's global numbering, and the
// shrink/grow protocol that turns a typed collective failure
// (comm::CommError) into a resumed run at a different world size.
//
// On rank loss (CommErrc::kRankLost from a collective):
//   1. quiesce — discard every in-flight stream task; a poisoned pipeline
//      must not retire work into the state we are about to rebuild;
//   2. evict — mark the victim dead in the watchdog; the active membership
//      is always the lowest-numbered healthy global ranks;
//   3. plan — pick the largest world P' <= survivors satisfying the Ulysses
//      head-divisibility predicates (n_head % P', n_kv_head % P') and the
//      rank-ordinal sequence predicate (tune::SearchSpace::divisible), with
//      chunks-per-rank re-planned by tune::Planner at P' (best unpruned
//      candidate, modeled-fits-first);
//   4. reshard — re-partition the ZeRO moment shards of the last coordinated
//      snapshot P -> P' (zero/reshard.h, FNV-1a manifest), after the
//      survivors agree on the manifest digest over a comm::GroupView
//      restricted to healthy ranks; the re-sharded snapshot is written both
//      over the live checkpoint and to `<ckpt>.reshard`, the twin's restore
//      point;
//   5. resume — the trainer re-applies the WorldPlan and restores, replaying
//      the failed step at P'. Because restore is bitwise and the re-split is
//      a pure copy, every loss from the reshard step on is bitwise identical
//      to a fresh P'-world run restored from `<ckpt>.reshard`.
//
// Network partitions (kPartitioned) quiesce, bump the epoch and replay at
// the same world — the injector's step-pinned rules fire once, so the
// fabric "heals" on replay, which is exactly the transient-at-step-scope
// semantics a partition has. Slow ranks (rankslow site) withhold a
// heartbeat; the watchdog's verdict distinguishes slow from dead and the
// group tolerates them without a membership change. Scheduled rejoins grow
// the world back through the same plan/reshard path.
//
// Every decision is a pure function of (scenario seed, step), all membership
// actions run on the driver thread in program order, and the transcript
// records each one — two runs of the same scenario produce byte-identical
// transcripts (tests/test_elastic.cpp asserts this).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fault/resilient_trainer.h"
#include "fault/watchdog.h"

namespace fpdt::fault {

// The outcome of planning a membership change: the new world size and the
// chunks-per-rank the planner picked for it. chunk_tokens follows from
// holding s_global constant: s_global / (world * chunks_per_rank).
struct WorldPlan {
  int world = 0;
  std::int64_t chunks_per_rank = 0;
  // Re-planned 2D grid for the new world (parallel/grid2d.h): the largest
  // ranks-per-node / head-degree no bigger than the operator's originals
  // that still satisfy the grid divisibility rules at `world`. 0 = flat/1D,
  // also when the operator never asked for a grid.
  int ranks_per_node = 0;
  int head_degree = 0;
  std::string label;  // planner candidate label, for the transcript
};

class ElasticWorldManager {
 public:
  // `rejoins`: scheduled node churn — after completing step S, `ranks`
  // previously-dead ranks rejoin (step -> count). Parsed from the scenario
  // by run_elastic; the injector never sees rejoin clauses.
  ElasticWorldManager(ResilientTrainer& rt, std::map<std::int64_t, int> rejoins = {});

  // Membership epoch: starts at 1, bumped on every rank loss, partition or
  // accepted rejoin. Mirrored to the `elastic.epoch` gauge.
  int epoch() const { return epoch_; }

  Watchdog& watchdog() { return watchdog_; }
  const std::vector<std::string>& transcript() const { return transcript_; }

  // Handles a fatal collective result naming a lost rank: quiesce, evict,
  // plan, reshard. Returns the plan the trainer must apply (re-applies the
  // config and restores from the re-sharded checkpoint). Throws FpdtError
  // when no valid smaller world exists.
  WorldPlan on_rank_lost(const comm::CommResult& res);

  // Handles a partitioned fabric: quiesce + epoch bump; the trainer then
  // replays the step at the same world.
  void on_partition(const comm::CommResult& res);

  // Post-step hook: heartbeats the active members (a rank drawn by the
  // rankslow site withholds its heartbeat and is judged by the watchdog),
  // then processes scheduled rejoins. Returns a WorldPlan when a rejoin
  // grows the world (checkpoint already re-sharded); the trainer applies it
  // exactly like a shrink plan.
  std::optional<WorldPlan> on_step_complete(std::int64_t step);

  // Last reshard, for the bitwise twin (run_elastic): the step the
  // re-sharded snapshot points at, and the world/chunks it was written for.
  std::int64_t reshard_step() const { return reshard_step_; }
  int reshard_world() const { return reshard_world_; }
  std::int64_t reshard_chunks() const { return reshard_chunks_; }

  // Total wall-clock seconds spent in quiesce+plan+reshard across all
  // membership events (also observed into the elastic.recovery_s histogram).
  double recovery_seconds() const { return recovery_seconds_; }

 private:
  // Discards every pending task on every stream of the current env.
  void quiesce();
  // Largest valid world <= max_world with planner-chosen chunks_per_rank.
  WorldPlan plan_world(int max_world) const;
  // Re-partitions the coordinated snapshot to plan.world and writes the
  // `.reshard` twin restore point. `exclude_ordinal` drops the victim from
  // the digest-agreement group (-1 = all current ordinals participate).
  void reshard_to(const WorldPlan& plan, int exclude_ordinal);
  void note(std::string line);
  // Active members are the lowest world() healthy globals; maps a current-
  // world ordinal to its global rank.
  int global_of_ordinal(int ordinal) const;

  ResilientTrainer& rt_;
  Watchdog watchdog_;
  const int initial_world_;
  int epoch_ = 1;
  std::map<std::int64_t, int> rejoins_;
  std::vector<std::string> transcript_;
  std::int64_t reshard_step_ = -1;
  int reshard_world_ = 0;
  std::int64_t reshard_chunks_ = 0;
  double recovery_seconds_ = 0.0;
};

// ---- fpdt elastic ----------------------------------------------------------
// A scripted churn run plus its bitwise twin. The scenario is the injector
// fault-spec DSL extended with `rejoin:step=S[,ranks=N]` clauses (handled
// here, stripped before the injector sees the spec), e.g.
//   "ranklost:step=1,rank=1;rejoin:step=3,ranks=1"
// The twin check: when a reshard happened, a fresh trainer at the reshard
// world restored from `<ckpt>.reshard` replays steps reshard_step..steps and
// every loss must match the elastic run bitwise. Without a reshard
// (netpart/rankslow only), a fault-free clean twin's final loss must match
// bitwise, as in run_chaos.

struct ElasticOptions {
  std::string scenario;
  int steps = 6;
  int world = 4;
  std::int64_t chunks = 2;
  std::int64_t chunk_tokens = 32;
  std::uint64_t seed = 1234;
  std::int64_t hbm_capacity_bytes = -1;
  int zero_stage = 3;
  // Physical grid of the elastic fleet (0 = the seed's flat fabric). With a
  // grid, rank loss re-plans ranks-per-node and head-degree alongside the
  // world (see WorldPlan) and the run uses hierarchical collectives.
  int ranks_per_node = 0;
  int head_degree = 0;
  // 8 heads so the world can shrink across {8, 4, 2, 1}.
  nn::ModelConfig model = nn::tiny_gpt(64, 2, 8, 96);
  std::string checkpoint_path = "fpdt_elastic.ckpt";
  bool verify_twin = true;
  bool keep_checkpoint = false;
};

struct ElasticResult {
  std::vector<double> losses;       // elastic run, one per step
  std::vector<double> twin_losses;  // reshard twin: steps reshard_step..steps;
                                    // clean twin: all steps
  std::vector<std::string> transcript;
  FaultStats stats;
  std::int64_t steps_completed = 0;
  int initial_world = 0;
  int final_world = 0;
  int final_epoch = 1;
  std::int64_t reshard_step = -1;
  int reshard_world = 0;
  std::int64_t reshard_chunks = 0;
  double recovery_wall_s = 0.0;
  bool twin_bitwise_match = false;

  bool resharded() const { return reshard_step >= 0; }
  bool survived(int steps) const { return steps_completed == steps; }
  // Human-readable + machine-greppable summary ("elastic: ..." lines).
  std::string report(int requested_steps) const;
};

ElasticResult run_elastic(const ElasticOptions& opt);

}  // namespace fpdt::fault
