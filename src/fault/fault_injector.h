// Deterministic, seeded fault injection for the emulated runtime.
//
// The paper's pipeline only earns its memory wins if every link — H2D/D2H
// chunk traffic, chunked All2Alls, the offload pool — behaves; at scale
// those links fail transiently, straggle and OOM. This module lets a run
// *prove* it survives that, reproducibly: every fault is drawn from a
// seeded, per-(rule, rank) splitmix64 stream, so the same spec + seed
// produces the same fault sequence on every run regardless of thread
// interleaving (each rank's draws are program-order deterministic).
//
// Configuration is a spec string (FpdtConfig::fault_spec or the
// FPDT_FAULTS env var): semicolon-separated rules of the form
//
//   site:key=value,key=value
//
// with sites  h2d | d2h | oom | collective | straggler | crash
//             | ranklost | rankslow | netpart          (membership churn)
// and keys    p=<prob per draw>      step=<fire once at this step>
//             rank=<only this rank>  count=<max injections from the rule>
//             delay=<straggler seconds>  seed=<rule RNG seed>
//
// e.g. "h2d:p=0.02,seed=7;collective:step=3,rank=1;oom:step=5" or
// "ranklost:step=1,rank=1;netpart:step=3". The churn sites drive the
// elastic membership layer (fault/elastic.h): ranklost permanently removes
// a rank (the collective that detects it fails with a typed CommError and
// ElasticWorldManager re-shards to a smaller world), rankslow makes a
// rank's heartbeat go stale without killing it (the Watchdog must say
// "slow", not "dead"), and netpart fails the step's collectives once and
// heals on replay.
//
// Cost discipline mirrors obs::Tracer: the injector is off by default and
// every injection point is gated on faults_enabled() — one relaxed atomic
// load compiling to a branch — so an unconfigured run takes no lock, draws
// no RNG and is bit-identical to a build without the fault layer.
//
// Recovery accounting lives here too (retried/degraded/recovered counters,
// mirrored into obs::MetricsRegistry), plus the backoff sink: retry loops
// report their exponential-backoff waits to the owning FpdtEnv, which
// charges them to stream virtual time so retries appear in `fpdt overlap`
// and trace output.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace fpdt::fault {

// Global enable flag. Kept outside the injector so the disabled check is
// one relaxed atomic load, no function call, no lock (obs/trace.h idiom).
extern std::atomic<bool> g_faults_enabled;
inline bool faults_enabled() { return g_faults_enabled.load(std::memory_order_relaxed); }

// Where a fault can be injected.
enum class Site {
  kH2D,         // transient fetch failure (ChunkPrefetcher / H2D stream)
  kD2H,         // transient offload failure
  kAlloc,       // spurious OutOfMemoryError in MemoryPool::charge
  kCollective,  // transient ProcessGroup collective failure
  kStraggler,   // latency spike charged to a stream task's virtual time
  kCrash,       // unrecoverable step failure (exercises restore-and-replay)
  kRankLost,    // permanent rank death detected at the next collective
  kRankSlow,    // stale heartbeat: the rank lags but is alive (Watchdog: slow)
  kNetPart,     // network partition: collectives fail this step, heal on replay
};

const char* site_name(Site site);

struct FaultStats {
  std::int64_t injected = 0;
  std::int64_t retried = 0;
  std::int64_t degraded = 0;
  std::int64_t recovered = 0;
  std::map<std::string, std::int64_t> injected_by_site;
  std::string to_string() const;
};

class FaultInjector {
 public:
  static FaultInjector& instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Parses `spec` (grammar above), resets stats and arms the gate. An empty
  // spec disarms. Throws FpdtError on malformed specs.
  void configure(const std::string& spec);
  // configure(getenv("FPDT_FAULTS")) if the variable is set and non-empty.
  void configure_from_env();
  // Disarms the gate and clears rules; stats survive for inspection.
  void disable();
  bool enabled() const { return faults_enabled(); }

  // Step boundary: makes step-pinned rules eligible for `step`.
  void begin_step(std::int64_t step);
  std::int64_t step() const;

  // Draws every matching rule for `site` in spec order at drawing context
  // `rank` (-1 = driver thread / whole-group collective); the first rule
  // that fires wins and is counted as one injection. Step-pinned rules
  // fire once per (step, rank).
  bool should_fail(Site site, int rank);

  // should_fail + throw TransientError naming the site and `what`.
  void maybe_throw(Site site, int rank, const std::string& what);

  // Group-level draw for membership events (ranklost/netpart): returns the
  // victim rank of the first firing rule — its rank= pin, or `fallback`
  // when unpinned — or -1 when no rule fires. Counted as one injection at
  // the victim rank.
  int group_event(Site site, int fallback);

  // Extra virtual seconds a straggler rule adds to the current stream task
  // (0 when none fires). Counted as an injection.
  double straggler_delay(int rank);

  // Recovery accounting, mirrored into obs::MetricsRegistry.
  void note_retry();
  void note_degraded(const std::string& reason);
  // Called after a step completes: every injection so far was, by
  // definition, survived — recovered := injected.
  void reconcile_step();

  FaultStats stats() const;
  // One entry per injection, "step=S site=NAME rank=R". Global order across
  // rank threads is nondeterministic; sort before comparing runs.
  std::vector<std::string> injection_log() const;
  void reset_stats();
  // Human-readable rule listing (CLI / tests).
  std::string describe() const;

  // ---- Backoff sink -------------------------------------------------------
  // Retry loops report their exponential-backoff waits here; the owning
  // FpdtEnv charges them to stream virtual time (rank < 0 = every rank's
  // compute stream; otherwise the rank's transfer stream picked by label).
  // Owner-tagged so a destroyed env never leaves a dangling closure: only
  // the matching owner's clear removes the sink.
  using BackoffSink = std::function<void(int rank, const std::string& label, double seconds)>;
  void set_backoff_sink(const void* owner, BackoffSink sink);
  void clear_backoff_sink(const void* owner);
  void charge_backoff(int rank, const std::string& label, double seconds);

 private:
  FaultInjector() = default;

  struct Rule {
    Site site = Site::kH2D;
    double p = 0.0;           // per-draw probability (ignored when step >= 0)
    std::int64_t step = -1;   // pinned step; fires once per (step, rank)
    int rank = -1;            // restrict to this rank (-1 = any)
    std::int64_t count = -1;  // max injections from this rule (-1 = unlimited)
    double delay = 500e-6;    // straggler extra seconds
    std::uint64_t seed = 1;
    std::int64_t fired = 0;
    std::set<std::pair<std::int64_t, int>> fired_pins;
    // One RNG stream per drawing rank so fault sequences are deterministic
    // under the thread pool (each rank draws in its own program order).
    std::map<int, Rng> streams;

    bool draw(std::int64_t current_step, int at_rank);
  };

  bool should_fail_locked(Site site, int rank, double* delay_out);
  void record_injection_locked(Site site, int rank);

  mutable std::mutex mutex_;
  std::vector<Rule> rules_;
  std::int64_t step_ = 0;
  FaultStats stats_;
  std::vector<std::string> log_;
  const void* sink_owner_ = nullptr;
  BackoffSink sink_;
};

}  // namespace fpdt::fault
