// ResilientTrainer — the recovery ladder around an FPDT training step.
//
// Wraps model + optimizer + data stream + FpdtTrainer and survives the
// faults the injector (fault/fault_injector.h) can throw at a step:
//
//   transient transfer/collective failures   handled below this layer, by
//       retry-with-backoff (fault/retry.h) and the prefetcher's sync
//       fallback — invisible here and to training math;
//   OutOfMemoryError mid-step                chunk-count doubling via the
//       chunk schedule (validated with ChunkSchedule::check_legal) and a
//       step retry on a rebuilt trainer;
//   anything else (FpdtError)                restore-and-replay from the
//       last TrainingState snapshot; the replayed steps are bitwise
//       identical to an uninterrupted run because every piece of state —
//       params, Adam moments, the corpus RNG stream, the step counter —
//       was captured.
//
// After each successful step the end-of-step watchdog runs, the injector's
// recovered counter is reconciled, and (optionally) a crash-safe
// TrainingState snapshot is written.
//
// With options().elastic set, typed collective failures (comm::CommError)
// route to the ElasticWorldManager (fault/elastic.h): rank loss shrinks the
// world and re-shards; partitions quiesce and replay; scheduled rejoins
// grow the world back.
//
// run_chaos() is the `fpdt chaos` driver: a faulted run followed by a
// fault-free twin with identical seeds, verifying the final loss matches
// bitwise (transient faults must be invisible to training math; an OOM
// chunk-doubling legitimately changes the reduction order, and a rank-loss
// reshard legitimately changes the world size — both are reported and
// verified approximately instead; `fpdt elastic` is the bitwise check for
// the latter, against a twin at the *same* reduced world).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "fault/fault_injector.h"
#include "nn/adam.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "parallel/zero/sharded_optimizer.h"

namespace fpdt::fault {

class ElasticWorldManager;
struct WorldPlan;

struct ResilientOptions {
  int world = 2;
  core::FpdtConfig cfg;
  std::int64_t hbm_capacity_bytes = -1;
  std::int64_t chunk_tokens = 64;
  double lr = 1e-3;
  std::uint64_t model_seed = 1234;
  std::uint64_t data_seed = 7;
  nn::ModelConfig model = nn::tiny_gpt();
  // Empty = no snapshots (an unrecoverable fault is then fatal).
  std::string checkpoint_path;
  int checkpoint_every = 1;
  // Attempts per train_step() call across OOM-degrade and restore-replay.
  int max_step_retries = 4;
  // Elastic membership (fault/elastic.h): rank loss shrinks the world and
  // re-shards instead of degrading to same-world restore-and-replay.
  bool elastic = false;
  // Scheduled rejoins (step -> rank count), forwarded to the elastic layer.
  std::map<std::int64_t, int> rejoin_at;
  // Non-empty: restore this snapshot right after construction — how the
  // elastic twin starts from a `.reshard` restore point.
  std::string restore_from;
};

struct StepOutcome {
  double loss = 0.0;
  int attempts = 1;
  bool oom_degraded = false;  // chunk count doubled during this step
  bool restored = false;      // restore-and-replay happened
  bool resharded = false;     // elastic membership change during this step
  int world = 0;              // world size after the step completed
};

class ResilientTrainer {
 public:
  explicit ResilientTrainer(const ResilientOptions& opt);
  ~ResilientTrainer();  // out of line: elastic_ is incomplete here

  // Runs one resilient optimizer step (sample -> forward/backward -> Adam
  // -> watchdog -> snapshot). Throws only when the recovery ladder is
  // exhausted.
  StepOutcome train_step();

  std::int64_t step() const { return step_; }
  std::int64_t tokens_per_step() const { return s_global_; }
  int world() const { return opt_.world; }
  nn::Model& model() { return *model_; }
  nn::Adam& adam() { return adam_; }
  core::FpdtTrainer& trainer() { return *trainer_; }
  const core::FpdtConfig& cfg() const { return opt_.cfg; }
  const ResilientOptions& options() const { return opt_; }

  // The membership manager when options().elastic, else nullptr.
  ElasticWorldManager* elastic() { return elastic_.get(); }

  // The ZeRO-sharded optimizer when cfg.zero_stage >= 1, else nullptr (the
  // replicated adam() path). Snapshots switch to the sharded envelope
  // (FPDTZR01) so per-rank moment shards round-trip bitwise.
  zero::ShardedOptimizer* sharded() { return zopt_.get(); }

  // Full TrainingState snapshot / restore (params + Adam moments + corpus
  // stream + step counter). Restore rebuilds the trainer from scratch.
  void save_snapshot(const std::string& path);
  void restore_snapshot(const std::string& path);

 private:
  void rebuild_trainer();
  void double_chunks_or_rethrow();
  // Commits a membership change: new world + chunks (s_global held
  // constant, so chunk_tokens is re-derived) and a restore from the
  // re-sharded checkpoint.
  void apply_world_plan(const WorldPlan& plan);

  ResilientOptions opt_;
  std::int64_t s_global_ = 0;
  std::unique_ptr<nn::Model> model_;
  std::unique_ptr<core::FpdtTrainer> trainer_;
  nn::Adam adam_;
  // cfg.zero_stage >= 1: the partitioned optimizer, bound to the current
  // trainer's env (rebuilt with it; moment shards carry over).
  std::unique_ptr<zero::ShardedOptimizer> zopt_;
  data::SyntheticCorpus corpus_;
  std::unique_ptr<ElasticWorldManager> elastic_;
  std::int64_t step_ = 0;
};

// ---- fpdt chaos ------------------------------------------------------------

struct ChaosOptions {
  std::string spec;  // fault spec; empty = injector left as-is (disabled)
  int steps = 4;
  int world = 2;
  std::int64_t chunks = 4;
  std::int64_t chunk_tokens = 64;
  std::uint64_t seed = 1234;
  std::int64_t hbm_capacity_bytes = -1;
  // -1 = seed behavior; 0-3 runs the chaos pair under that ZeRO stage.
  int zero_stage = -1;
  std::string checkpoint_path = "fpdt_chaos.ckpt";
  bool verify_against_clean = true;
  bool keep_checkpoint = false;
};

struct ChaosResult {
  std::vector<double> losses;        // faulted run, one per step
  std::vector<double> clean_losses;  // fault-free twin (verify_against_clean)
  FaultStats stats;
  std::int64_t steps_completed = 0;
  bool math_degraded = false;   // OOM doubling changed the reduction order
  bool resharded = false;       // rank loss shrank the world mid-run
  bool any_restored = false;
  bool loss_bitwise_match = false;  // final faulted loss == final clean loss
  double loss_abs_diff = 0.0;

  bool survived(int steps) const { return steps_completed == steps; }
  // Human-readable + machine-greppable summary ("chaos: ..." lines).
  std::string report(int requested_steps) const;
};

ChaosResult run_chaos(const ChaosOptions& opt);

}  // namespace fpdt::fault
