#include "fault/fault_injector.h"

#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace fpdt::fault {

std::atomic<bool> g_faults_enabled{false};

const char* site_name(Site site) {
  switch (site) {
    case Site::kH2D: return "h2d";
    case Site::kD2H: return "d2h";
    case Site::kAlloc: return "oom";
    case Site::kCollective: return "collective";
    case Site::kStraggler: return "straggler";
    case Site::kCrash: return "crash";
    case Site::kRankLost: return "ranklost";
    case Site::kRankSlow: return "rankslow";
    case Site::kNetPart: return "netpart";
  }
  return "unknown";
}

std::string FaultStats::to_string() const {
  std::ostringstream os;
  os << "injected " << injected << " retried " << retried << " degraded " << degraded
     << " recovered " << recovered;
  for (const auto& [site, n] : injected_by_site) os << "  " << site << "=" << n;
  return os.str();
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

namespace {

Site site_by_name(const std::string& name) {
  if (name == "h2d") return Site::kH2D;
  if (name == "d2h") return Site::kD2H;
  if (name == "oom" || name == "alloc") return Site::kAlloc;
  if (name == "collective" || name == "coll") return Site::kCollective;
  if (name == "straggler" || name == "slow") return Site::kStraggler;
  if (name == "crash") return Site::kCrash;
  if (name == "ranklost") return Site::kRankLost;
  if (name == "rankslow") return Site::kRankSlow;
  if (name == "netpart" || name == "partition") return Site::kNetPart;
  throw FpdtError("fault spec: unknown site '" + name +
                  "' (try h2d, d2h, oom, collective, straggler, crash,"
                  " ranklost, rankslow, netpart)");
}

double parse_double(const std::string& v, const std::string& key) {
  try {
    std::size_t used = 0;
    const double x = std::stod(v, &used);
    FPDT_CHECK_EQ(used, v.size()) << " fault spec value for " << key;
    return x;
  } catch (const FpdtError&) {
    throw;
  } catch (const std::exception&) {
    throw FpdtError("fault spec: bad value '" + v + "' for " + key);
  }
}

// Stable per-rank stream derivation: rule seed, site and rank mixed through
// splitmix64 so rules with equal seeds still draw independent sequences.
Rng make_stream(std::uint64_t seed, Site site, int rank) {
  Rng base(seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(site) + 1)));
  return base.split(static_cast<std::uint64_t>(rank + 2));
}

}  // namespace

bool FaultInjector::Rule::draw(std::int64_t current_step, int at_rank) {
  // Rank pins: a draw from a concrete rank only matches its own rule; draws
  // from the driver thread / whole-group sites (rank -1) match any rule, so
  // "collective:step=3,rank=1" still fires even though collectives run once
  // for the whole group.
  if (rank >= 0 && at_rank >= 0 && at_rank != rank) return false;
  if (count >= 0 && fired >= count) return false;
  if (step >= 0) {
    if (current_step != step) return false;
    if (!fired_pins.insert({current_step, at_rank}).second) return false;
    ++fired;
    return true;
  }
  if (p <= 0.0) return false;
  auto it = streams.find(at_rank);
  if (it == streams.end()) it = streams.emplace(at_rank, make_stream(seed, site, at_rank)).first;
  if (it->second.next_uniform() >= p) return false;
  ++fired;
  return true;
}

void FaultInjector::configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  stats_ = FaultStats{};
  log_.clear();
  step_ = 0;

  std::istringstream ss(spec);
  std::string clause;
  while (std::getline(ss, clause, ';')) {
    // Trim surrounding whitespace; empty clauses (trailing ';') are fine.
    const auto b = clause.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const auto e = clause.find_last_not_of(" \t");
    clause = clause.substr(b, e - b + 1);

    const auto colon = clause.find(':');
    Rule rule;
    rule.site = site_by_name(colon == std::string::npos ? clause : clause.substr(0, colon));
    if (colon != std::string::npos) {
      std::istringstream kvs(clause.substr(colon + 1));
      std::string kv;
      while (std::getline(kvs, kv, ',')) {
        if (kv.empty()) continue;
        const auto eq = kv.find('=');
        FPDT_CHECK_NE(eq, std::string::npos) << " fault spec clause '" << kv << "'";
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "p") rule.p = parse_double(value, key);
        else if (key == "step") rule.step = static_cast<std::int64_t>(parse_double(value, key));
        else if (key == "rank") rule.rank = static_cast<int>(parse_double(value, key));
        else if (key == "count") rule.count = static_cast<std::int64_t>(parse_double(value, key));
        else if (key == "delay") rule.delay = parse_double(value, key);
        else if (key == "seed") rule.seed = static_cast<std::uint64_t>(parse_double(value, key));
        else throw FpdtError("fault spec: unknown key '" + key + "'");
      }
    }
    FPDT_CHECK(rule.p >= 0.0 && rule.p <= 1.0) << " fault probability for " << site_name(rule.site);
    FPDT_CHECK(rule.p > 0.0 || rule.step >= 0)
        << " fault rule for " << site_name(rule.site) << " needs p= or step=";
    rules_.push_back(std::move(rule));
  }
  g_faults_enabled.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::configure_from_env() {
  const char* spec = std::getenv("FPDT_FAULTS");
  if (spec != nullptr && spec[0] != '\0') configure(spec);
}

void FaultInjector::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  g_faults_enabled.store(false, std::memory_order_relaxed);
  rules_.clear();
}

void FaultInjector::begin_step(std::int64_t step) {
  std::lock_guard<std::mutex> lock(mutex_);
  step_ = step;
}

std::int64_t FaultInjector::step() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return step_;
}

void FaultInjector::record_injection_locked(Site site, int rank) {
  ++stats_.injected;
  ++stats_.injected_by_site[site_name(site)];
  log_.push_back("step=" + std::to_string(step_) + " site=" + site_name(site) +
                 " rank=" + std::to_string(rank));
  obs::MetricsRegistry::global()
      .counter("fault.injected", std::string("site=") + site_name(site))
      .add(1);
}

bool FaultInjector::should_fail_locked(Site site, int rank, double* delay_out) {
  for (Rule& rule : rules_) {
    if (rule.site != site) continue;
    if (!rule.draw(step_, rank)) continue;
    if (delay_out != nullptr) *delay_out = rule.delay;
    record_injection_locked(site, rank);
    return true;
  }
  return false;
}

bool FaultInjector::should_fail(Site site, int rank) {
  if (!faults_enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return should_fail_locked(site, rank, nullptr);
}

void FaultInjector::maybe_throw(Site site, int rank, const std::string& what) {
  if (should_fail(site, rank)) {
    throw TransientError(std::string("injected ") + site_name(site) + " fault: " + what +
                         " (rank " + std::to_string(rank) + ", step " +
                         std::to_string(step()) + ")");
  }
}

int FaultInjector::group_event(Site site, int fallback) {
  if (!faults_enabled()) return -1;
  std::lock_guard<std::mutex> lock(mutex_);
  for (Rule& rule : rules_) {
    if (rule.site != site) continue;
    // The draw happens at the group level (rank -1 matches any pin); the
    // *victim* is the rule's pinned rank, or the caller's fallback.
    if (!rule.draw(step_, -1)) continue;
    const int victim = rule.rank >= 0 ? rule.rank : fallback;
    record_injection_locked(site, victim);
    return victim;
  }
  return -1;
}

double FaultInjector::straggler_delay(int rank) {
  if (!faults_enabled()) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  double delay = 0.0;
  if (should_fail_locked(Site::kStraggler, rank, &delay)) return delay;
  return 0.0;
}

void FaultInjector::note_retry() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.retried;
  }
  obs::MetricsRegistry::global().counter("fault.retried").add(1);
}

void FaultInjector::note_degraded(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.degraded;
  }
  obs::MetricsRegistry::global().counter("fault.degraded", "reason=" + reason).add(1);
}

void FaultInjector::reconcile_step() {
  std::int64_t recovered = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.recovered = stats_.injected;
    recovered = stats_.recovered;
  }
  obs::MetricsRegistry::global().gauge("fault.recovered").set(static_cast<double>(recovered));
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::string> FaultInjector::injection_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

void FaultInjector::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = FaultStats{};
  log_.clear();
  for (Rule& rule : rules_) {
    rule.fired = 0;
    rule.fired_pins.clear();
    rule.streams.clear();
  }
}

std::string FaultInjector::describe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const Rule& rule : rules_) {
    os << site_name(rule.site) << ": ";
    if (rule.step >= 0) os << "step=" << rule.step;
    else os << "p=" << rule.p;
    if (rule.rank >= 0) os << " rank=" << rule.rank;
    if (rule.count >= 0) os << " count=" << rule.count;
    if (rule.site == Site::kStraggler) os << " delay=" << rule.delay << "s";
    os << " seed=" << rule.seed << "\n";
  }
  return os.str();
}

void FaultInjector::set_backoff_sink(const void* owner, BackoffSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_owner_ = owner;
  sink_ = std::move(sink);
}

void FaultInjector::clear_backoff_sink(const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_owner_ == owner) {
    sink_owner_ = nullptr;
    sink_ = nullptr;
  }
}

void FaultInjector::charge_backoff(int rank, const std::string& label, double seconds) {
  BackoffSink sink;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sink = sink_;
  }
  // Invoke outside the lock: the sink enqueues stream spans, which may
  // re-enter the injector (e.g. the straggler draw at drain time).
  if (sink) sink(rank, label, seconds);
}

}  // namespace fpdt::fault
