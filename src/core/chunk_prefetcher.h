// ChunkPrefetcher — double-buffered chunk migration over a ChunkStore.
//
// The paper's pipeline (§3.3, Fig. 8) hides host↔device chunk traffic
// behind attention compute by prefetching chunk j+1 on the H2D stream
// while chunk j computes, and retiring offloads asynchronously on the D2H
// stream. This class is that engine for the executed runtime:
//
//   prefetch(key)  issues the fetch on the device's H2D stream; the
//                  destination bytes are charged to the HBM pool's
//                  *staging* counter at issue — where cudaMallocAsync
//                  would fail — so OOM semantics stay honest while the
//                  transfer is in flight.
//   acquire(key)   waits for the prefetched chunk (the staging charge
//                  converts to a regular data charge when the stream task
//                  retires) and returns the device buffer plus its ready
//                  event, for downstream compute-task dependencies. Keys
//                  that were never prefetched are fetched on the spot —
//                  still through the H2D stream, so unhidden transfers
//                  show up as *exposed* time in the timeline report.
//   put_async(key) detaches the device charge at issue (the compute that
//                  produced the chunk is named by `waits`), stages the
//                  bytes on the destination pool, and adopts the chunk
//                  into the store when the D2H task retires. A later
//                  prefetch of the same key waits on the offload event
//                  (write-then-read ordering across streams).
//
// In sync mode (cfg.stream_prefetch == false, a non-offloading store, or
// after fault-injected transfer retries were exhausted — see degraded())
// every call degrades to the store's inline migration at the same program
// point, so byte accounting — and therefore HBM peaks and transfer
// counters — is identical by construction between the two modes; only the
// stream span ledger differs. Side effects always execute on the calling
// thread (streams defer, they do not parallelise), so results are
// bit-identical too.
//
// One prefetcher per rank: it drives that rank's device streams, which are
// single-threaded by the executor's fork/join structure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/chunk_store.h"
#include "runtime/stream.h"

namespace fpdt::core {

class ChunkPrefetcher {
 public:
  // `max_in_flight` caps concurrently-prefetched chunks (2 = one KV pair,
  // the double-buffer window). Exceeding it is a programming error.
  ChunkPrefetcher(ChunkStore& store, bool use_streams, std::int64_t max_in_flight = 2);

  ChunkPrefetcher(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher& operator=(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher(ChunkPrefetcher&&) = delete;
  ChunkPrefetcher& operator=(ChunkPrefetcher&&) = delete;

  // Drains in-flight work; during exception unwind, abandons it instead
  // (closures release their staging charges on destruction).
  ~ChunkPrefetcher();

  bool use_streams() const { return use_streams_; }

  // True once transient-fault retries were exhausted and the prefetcher
  // fell back to the sync migration path (bit-identical by construction)
  // for the rest of its lifetime — i.e. the remainder of the pass.
  bool degraded() const { return degraded_; }

  // Issues an async fetch of `key` to the device. `take` removes the
  // stored chunk (host charge drops at retire); otherwise the host copy
  // survives (fetch_copy semantics). `waits` are cross-stream deps — the
  // double-buffer window event (the compute that freed the target buffer).
  void prefetch(const std::string& key, bool take = false,
                std::vector<runtime::Event> waits = {});

  struct Fetched {
    runtime::Buffer buffer;
    runtime::Event ready;  // H2D completion; null in sync mode
  };

  // Completes the prefetch of `key` (or performs an on-the-spot fetch with
  // the same `take` semantics if none was issued) and returns the device
  // buffer.
  Fetched acquire(const std::string& key, bool take = false);

  // Async store of a device buffer under `key`. Returns the D2H completion
  // event (null in sync mode, where the offload happens inline).
  runtime::Event put_async(const std::string& key, runtime::Buffer buffer,
                           std::vector<runtime::Event> waits = {});

  // Chunks currently in flight on the H2D stream.
  std::int64_t in_flight() const { return static_cast<std::int64_t>(fetches_.size()); }

  // Drains both transfer streams (retiring every pending migration).
  void synchronize();

 private:
  void issue_fetch(const std::string& key, bool take, std::vector<runtime::Event> waits,
                   bool count_against_cap);
  // Streams path is active unless sync-constructed or fault-degraded.
  bool streams_active() const { return use_streams_ && !degraded_; }
  // Draws the injector for a transfer at `key`; retries with backoff
  // (charged to the transfer stream); on exhaustion flips degraded_.
  void survive_transfer_faults(bool is_fetch, const std::string& key);

  struct InFetch {
    runtime::Event ready;
    // Filled by the stream task; shared because std::function is copyable.
    std::shared_ptr<runtime::Buffer> slot;
  };
  struct PendingPut {
    std::int64_t bytes = 0;
    runtime::Dtype dtype = runtime::Dtype::kBF16;
  };

  ChunkStore* store_;
  bool use_streams_;
  bool degraded_ = false;
  std::int64_t max_in_flight_;
  std::unordered_map<std::string, InFetch> fetches_;
  // Offloads issued but not yet retired: the chunk is not in the store
  // yet, so its byte size must be remembered for a chained prefetch.
  std::unordered_map<std::string, PendingPut> pending_puts_;
};

}  // namespace fpdt::core
