// Explicit representation of the FPDT chunk schedule (Figs. 4, 5 and 7) as
// an op DAG with stream assignments.
//
// The functional executor (fpdt_block.cpp) and the timing simulator
// (sim/timeline.cpp) both implement this schedule; this module makes the
// schedule itself a first-class, checkable object:
//  - generation: the exact op sequence for a forward pass and the nested
//    kv-outer/q-inner backward, per rank-agnostic chunk indices;
//  - legality checking: every operand is produced before use, nothing is
//    consumed after it was freed/offloaded without a fetch, at most
//    `window` KV chunk buffers are device-resident at any point (the
//    double-buffer invariant), and dq̂ accumulators finalize exactly once —
//    at outer iteration j == i, as the paper describes;
//  - accounting: per-op data volumes, so schedule-level traffic totals can
//    be cross-checked against the functional executor's transfer counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpdt::core {

enum class OpKind {
  kQkvProject,    // norm1 + QKV projection + RoPE of local chunk i
  kAll2AllQkv,    // scatter heads / gather sequence for chunk i
  kAttnStep,      // online attention: q chunk i against kv chunk j
  kOffloadKv,     // k̂ᵢ/v̂ᵢ (and caches) to host
  kFetchKv,       // k̂ⱼ/v̂ⱼ back to device
  kAll2AllOut,    // ô chunk back to local layout
  kOutProjFfn,    // Wo + residual + chunked FFN of chunk i
  kFfnBackward,   // FFN/norm2/Wo backward of chunk i (phase A)
  kAll2AllGrad,   // dô or dq̂/dk̂/dv̂ re-shard
  kFetchQGrad,    // q̂ᵢ/dôᵢ/dq̂ᵢ-accumulator fetch (phase B inner)
  kAttnBwdStep,   // backward pair (kv j, q i)
  kOffloadDq,     // park partial dq̂ᵢ on host
  kQkvBackward,   // projection + norm1 backward of chunk j
};

struct ScheduleOp {
  OpKind kind;
  std::int64_t i = -1;  // query/main chunk index
  std::int64_t j = -1;  // kv chunk index (attention pair ops)
  int stream = 0;       // 0 compute, 1 h2d, 2 d2h, 3 comm
  std::string debug() const;
};

inline constexpr int kStreamCompute = 0;
inline constexpr int kStreamH2D = 1;
inline constexpr int kStreamD2H = 2;
inline constexpr int kStreamComm = 3;

class ChunkSchedule {
 public:
  // u: chunks per rank; offload: host caching on; double_buffer: prefetch
  // window 2 (else 1).
  static ChunkSchedule forward(std::int64_t u, bool offload, bool double_buffer);
  static ChunkSchedule backward(std::int64_t u, bool offload, bool double_buffer);

  const std::vector<ScheduleOp>& ops() const { return ops_; }
  std::int64_t chunks() const { return u_; }
  bool offload() const { return offload_; }
  std::int64_t window() const { return double_buffer_ ? 2 : 1; }

  // Throws FpdtError describing the first violated invariant; returns
  // normally when the schedule is legal. Checked invariants:
  //  (1) attention step (i, j) happens only after All2All produced q̂ᵢ and
  //      after k̂ⱼ is device-resident (fresh from All2All or fetched);
  //  (2) with offload, at most `window` *fetched* KV chunks are resident;
  //  (3) every q̂ chunk's backward contributions arrive in outer-ascending
  //      order and dq̂ᵢ finalizes exactly at pair (j == i);
  //  (4) an offloaded chunk is never read without an intervening fetch.
  void check_legal() const;

  // Totals for cross-checking against executor counters.
  std::int64_t count(OpKind kind) const;

  std::string to_string(std::size_t max_ops = 200) const;

 private:
  ChunkSchedule(std::int64_t u, bool offload, bool double_buffer)
      : u_(u), offload_(offload), double_buffer_(double_buffer) {}

  void push(OpKind kind, std::int64_t i, std::int64_t j, int stream) {
    ops_.push_back(ScheduleOp{kind, i, j, stream});
  }

  std::int64_t u_;
  bool offload_;
  bool double_buffer_;
  bool is_backward_ = false;
  std::vector<ScheduleOp> ops_;
};

}  // namespace fpdt::core
