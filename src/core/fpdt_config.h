// Configuration of the FPDT execution scheme.
#pragma once

#include <cstdint>
#include <string>

namespace fpdt::core {

struct FpdtConfig {
  // u: sequence chunks per rank. The paper's sweet spot is a 64K-token
  // *global* chunk (§5.3); u = s_local / (64K / P) at paper scale.
  std::int64_t chunks_per_rank = 4;

  // Offload cached q̂/k̂/v̂/ô chunks to host memory ("FPDT w. offload").
  // false = "FPDT w. chunking": cached chunks stay resident in HBM.
  bool offload = true;

  // Keep a second KV chunk buffer resident so the next chunk's fetch can
  // overlap compute (Fig. 7). Only affects the measured HBM working set in
  // the functional layer; the latency effect lives in the simulator.
  bool double_buffer = true;

  // Route chunk migrations through the per-device emulated streams
  // (runtime/stream.h): prefetches issue on the H2D queue before the chunk
  // computes and offloads retire on the D2H queue, making the paper's
  // compute/transfer overlap (§3.3, Fig. 8) observable in the executed
  // system. Accounting is byte-exact vs. the inline path (in-flight bytes
  // sit in the pools' staging counters) and results are bit-identical;
  // only the transfer-timeline report changes. Only meaningful with
  // offload (a resident store migrates nothing).
  bool stream_prefetch = true;

  // FFN chunk multiplier relative to attention chunks (§5.4 finds 2x
  // "sufficient to ensure that the attention part strictly binds the
  // memory footprint").
  std::int64_t ffn_chunk_multiplier = 2;

  // Loss-head chunks; <= 0 means the paper's rule vocab/hidden*2.
  std::int64_t lm_head_chunks = 0;

  // Cache q̂/k̂/v̂/ô/lse/y chunks from the *actual* forward pass so backward
  // starts directly from the host caches (Fig. 7: "the global sequence
  // chunk q̂, k̂, v̂ have been cached during the forward, we then directly
  // fetch them... without introducing additional Alltoall") — no attention
  // recompute. Costs host memory proportional to n_layer; when host
  // capacity is the binding constraint, disable it and backward falls back
  // to chunk-wise recompute (plain activation checkpointing).
  bool cache_forward_outputs = true;

  // ZeRO stage composed with the sequence-parallel group (parallel/zero/):
  //   -1  seed behavior — no model-state residency accounting, replicated
  //       optimizer (every pre-ZeRO test and bench keeps its exact numbers);
  //    0  replicated params/grads/optimizer, but *accounted*: the trainer
  //       attaches a zero::ZeroEngine that charges 2N+2N+12N logical bytes
  //       per rank (the conformance oracle);
  //  1-3  ZeRO-1/2/3 partitioning per Rajbhandari et al. (2020); every
  //       stage is bit-identical to stage 0 (tests/test_zero.cpp).
  int zero_stage = -1;

  // Physical grid shape (topo/topology.h): ranks per node of the emulated
  // fleet. 0 (the default) keeps the seed's flat fabric. When it divides the
  // world with more than one node, FpdtEnv builds a
  // comm::HierarchicalProcessGroup over the node-major grid — collectives
  // are payload-bitwise-identical to flat, but traffic is routed and priced
  // intra-node vs inter-node.
  int ranks_per_node = 0;

  // Head-parallel degree of the 2D (sequence × head) grid, the Untied
  // Ulysses decomposition (parallel/grid2d.h): the head All2All spans
  // `head_degree` ranks on the fast intra-node axis, the sequence axis
  // spans world / head_degree. 0 (the default) = 1D sequence parallelism.
  // Must divide the world, the model's head count and (when set) the
  // ranks-per-node, so the head axis never leaves the node.
  int head_degree = 0;

  // Math-kernel backend for the run (kernels/backend.h): "scalar" (the
  // bit-exact reference), "simd" (AVX2/FMA with portable fallback), or ""
  // (the default) to inherit the process default — FPDT_KERNEL_BACKEND or
  // "scalar". Applied by FpdtEnv for its lifetime; the env var, like
  // FPDT_FAULTS, wins over per-env config.
  std::string kernel_backend;

  // Canonical encoding of every execution-behavior knob above, one string
  // per distinct behavior ("u=4;off=1;db=1;sp=1;ffn=2;lm=0;cf=1;z=3;kb=scalar").
  // src/tune/ keys its result cache on it; fault_spec is deliberately
  // excluded (the tuner never injects faults into candidate runs). The
  // kernel backend is included: backends differ in float accumulation
  // order, so measurements under different backends are distinct results.
  std::string canonical() const {
    return "u=" + std::to_string(chunks_per_rank) + ";off=" + (offload ? "1" : "0") +
           ";db=" + (double_buffer ? "1" : "0") + ";sp=" + (stream_prefetch ? "1" : "0") +
           ";ffn=" + std::to_string(ffn_chunk_multiplier) +
           ";lm=" + std::to_string(lm_head_chunks) +
           ";cf=" + (cache_forward_outputs ? "1" : "0") + ";z=" + std::to_string(zero_stage) +
           ";kb=" + (kernel_backend.empty() ? "scalar" : kernel_backend) +
           ";rpn=" + std::to_string(ranks_per_node) + ";hd=" + std::to_string(head_degree);
  }

  // Deterministic fault-injection spec (fault/fault_injector.h), e.g.
  // "h2d:p=0.02,seed=7;collective:step=3,rank=1;oom:step=5". Empty (the
  // default) leaves the injector untouched — zero overhead beyond one
  // relaxed atomic load per injection point. Applied by FpdtEnv unless the
  // process-wide injector was already configured (CLI/env takes precedence).
  std::string fault_spec;
};

}  // namespace fpdt::core
