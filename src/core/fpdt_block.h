// FpdtBlockExecutor — the paper's contribution, functionally exact.
//
// Executes one Transformer block across a sequence-parallel group with the
// fully pipelined chunked dataflow of §4:
//
//   forward (Figs. 4–5), per sequence chunk i:
//     norm1 + QKV projection on each rank's local chunk (RoPE at global
//     positions) → chunked All2All (scatter heads / gather sequence) →
//     online attention of q̂ᵢ against cached k̂₀..k̂ᵢ fetched chunk-by-chunk
//     → All2All back → output projection → residual → chunked FFN (2× the
//     attention chunks, §5.4) → residual.
//     k̂ᵢ/v̂ᵢ are stored in the ChunkStore (offloaded to host when
//     cfg.offload), so at most one (strict) or two (double-buffer) KV
//     chunks are HBM-resident at a time.
//
//   backward (Fig. 7): recompute-forward with caching (activation
//   checkpointing), then
//     phase A  per chunk: FFN/norm2/Wo backward → dô chunks + softmax D;
//     phase B  nested loop — outer over KV chunks j, inner over query
//              chunks i ≥ j: online_attn_backward_step accumulates dk̂ⱼ/dv̂ⱼ
//              across the inner loop and dq̂ᵢ across outer loops; dq̂ⱼ is
//              final at (j, i=j), dk̂ⱼ/dv̂ⱼ at the end of outer j; then one
//              All2All returns the finals to their home ranks where the
//              QKV-projection and norm1 backward produce dxⱼ;
//     residual gradients accumulate along the way.
//
// Weights are *shared* across ranks (they borrow one nn::TransformerBlock):
// each emulated rank accumulates into the same gradient tensors, which
// reproduces exactly what the gradient all-reduce of the real system
// computes. Numerical equivalence against the single-device reference block
// is enforced in tests/test_fpdt.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/chunk_store.h"
#include "core/fpdt_env.h"
#include "nn/transformer_block.h"

namespace fpdt::core {

class FpdtBlockExecutor {
 public:
  // layer_index only namespaces chunk keys (debuggability).
  FpdtBlockExecutor(nn::TransformerBlock& block, std::int64_t layer_index, FpdtEnv& env);

  // x_local: one [s_local, d] tensor per rank in rank-ordinal chunk layout.
  // Returns per-rank block outputs.
  //
  // With cfg.cache_forward_outputs the executor retains the per-chunk
  // q̂/k̂/v̂/ô/lse/y caches (offloaded to host) so the next backward() starts
  // directly from them; otherwise nothing is kept (plain activation
  // checkpointing) and backward() recomputes the forward chunk-wise first.
  std::vector<Tensor> forward(const std::vector<Tensor>& x_local);

  // dz_local: per-rank gradient of the block output. Consumes the forward
  // caches when present, else recomputes; accumulates weight gradients,
  // returns per-rank dx.
  std::vector<Tensor> backward(const std::vector<Tensor>& dz_local,
                               const std::vector<Tensor>& x_local);

  // Host bytes currently held by this block's caches (0 when not caching).
  std::int64_t cached_host_bytes() const;

 private:
  std::vector<Tensor> backward_phases(const std::vector<Tensor>& dz_local,
                                      const std::vector<Tensor>& x_local,
                                      std::vector<ChunkStore>& stores);

  struct Geometry {
    std::int64_t s_local = 0, c_local = 0, c_global = 0, u = 0, d_model = 0;
  };
  Geometry geometry(const std::vector<Tensor>& x_local) const;

  // Shared forward pass. When `stores` is non-null, caches q̂/k̂/v̂/ô/lse/y
  // chunks for the backward phases; otherwise only k̂/v̂ live transiently.
  std::vector<Tensor> run_forward(const std::vector<Tensor>& x_local,
                                  std::vector<ChunkStore>* stores);

  std::int64_t local_pos0(int rank, std::int64_t chunk, std::int64_t c_local) const;

  nn::TransformerBlock* block_;
  std::int64_t layer_;
  FpdtEnv* env_;
  // Per-rank caches retained between forward and backward when
  // cfg.cache_forward_outputs is set.
  std::vector<ChunkStore> pending_stores_;
};

}  // namespace fpdt::core
