#include "core/chunk_schedule.h"

#include <set>
#include <sstream>

#include "common/check.h"

namespace fpdt::core {

namespace {

const char* kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kQkvProject:
      return "qkv_project";
    case OpKind::kAll2AllQkv:
      return "all2all_qkv";
    case OpKind::kAttnStep:
      return "attn_step";
    case OpKind::kOffloadKv:
      return "offload_kv";
    case OpKind::kFetchKv:
      return "fetch_kv";
    case OpKind::kAll2AllOut:
      return "all2all_out";
    case OpKind::kOutProjFfn:
      return "out_proj_ffn";
    case OpKind::kFfnBackward:
      return "ffn_backward";
    case OpKind::kAll2AllGrad:
      return "all2all_grad";
    case OpKind::kFetchQGrad:
      return "fetch_qgrad";
    case OpKind::kAttnBwdStep:
      return "attn_bwd_step";
    case OpKind::kOffloadDq:
      return "offload_dq";
    case OpKind::kQkvBackward:
      return "qkv_backward";
  }
  return "?";
}

}  // namespace

std::string ScheduleOp::debug() const {
  std::ostringstream os;
  os << kind_name(kind);
  if (i >= 0) os << " i=" << i;
  if (j >= 0) os << " j=" << j;
  return os.str();
}

ChunkSchedule ChunkSchedule::forward(std::int64_t u, bool offload, bool double_buffer) {
  FPDT_CHECK_GE(u, 1) << " schedule chunks";
  ChunkSchedule sched(u, offload, double_buffer);
  for (std::int64_t i = 0; i < u; ++i) {
    sched.push(OpKind::kQkvProject, i, -1, kStreamCompute);
    sched.push(OpKind::kAll2AllQkv, i, -1, kStreamComm);
    for (std::int64_t j = 0; j < i; ++j) {
      if (offload) sched.push(OpKind::kFetchKv, i, j, kStreamH2D);
      sched.push(OpKind::kAttnStep, i, j, kStreamCompute);
    }
    sched.push(OpKind::kAttnStep, i, i, kStreamCompute);  // diagonal: fresh k̂ᵢ
    if (offload) sched.push(OpKind::kOffloadKv, i, -1, kStreamD2H);
    sched.push(OpKind::kAll2AllOut, i, -1, kStreamComm);
    sched.push(OpKind::kOutProjFfn, i, -1, kStreamCompute);
  }
  return sched;
}

ChunkSchedule ChunkSchedule::backward(std::int64_t u, bool offload, bool double_buffer) {
  FPDT_CHECK_GE(u, 1) << " schedule chunks";
  ChunkSchedule sched(u, offload, double_buffer);
  sched.is_backward_ = true;
  // Phase A: FFN / norm2 / Wo backward per chunk, producing dô + D.
  for (std::int64_t i = 0; i < u; ++i) {
    sched.push(OpKind::kFfnBackward, i, -1, kStreamCompute);
    sched.push(OpKind::kAll2AllOut, i, -1, kStreamComm);   // ô back to local
    sched.push(OpKind::kAll2AllGrad, i, -1, kStreamComm);  // dô to global
  }
  // Phase B: nested loops — outer over KV chunks, inner over query chunks.
  for (std::int64_t j = 0; j < u; ++j) {
    if (offload) sched.push(OpKind::kFetchKv, -1, j, kStreamH2D);
    for (std::int64_t i = j; i < u; ++i) {
      if (offload) sched.push(OpKind::kFetchQGrad, i, j, kStreamH2D);
      sched.push(OpKind::kAttnBwdStep, i, j, kStreamCompute);
      if (offload && i != j) sched.push(OpKind::kOffloadDq, i, j, kStreamD2H);
    }
    sched.push(OpKind::kAll2AllGrad, j, -1, kStreamComm);  // dq̂ⱼ/dk̂ⱼ/dv̂ⱼ home
    sched.push(OpKind::kQkvBackward, j, -1, kStreamCompute);
  }
  return sched;
}

void ChunkSchedule::check_legal() const {
  std::set<std::int64_t> qhat_ready;     // All2All done for chunk i
  std::set<std::int64_t> kv_on_host;     // offloaded KV chunks
  std::set<std::int64_t> kv_resident;    // fetched copies currently on device
  std::set<std::int64_t> dq_finalized;   // dq̂ finalization bookkeeping
  std::vector<std::int64_t> dq_last_outer(static_cast<std::size_t>(u_), -1);

  if (!is_backward_) {
    for (const ScheduleOp& op : ops_) {
      switch (op.kind) {
        case OpKind::kAll2AllQkv:
          qhat_ready.insert(op.i);
          break;
        case OpKind::kFetchKv: {
          FPDT_CHECK(kv_on_host.contains(op.j))
              << " fetch of non-offloaded kv chunk " << op.j << " (" << op.debug() << ")";
          kv_resident.insert(op.j);
          // Double-buffer invariant: window bound on fetched copies.
          FPDT_CHECK_LE(static_cast<std::int64_t>(kv_resident.size()), window() + 1)
              << " too many resident kv chunks at " << op.debug();
          break;
        }
        case OpKind::kAttnStep: {
          FPDT_CHECK(qhat_ready.contains(op.i))
              << " attention before All2All of chunk " << op.i;
          if (op.j != op.i) {
            // Earlier chunk must be resident: fetched (offload mode) or
            // still alive (resident mode).
            if (offload_) {
              FPDT_CHECK(kv_resident.contains(op.j))
                  << " attention on non-fetched kv chunk " << op.j;
              // Strict single-buffer mode: the chunk retires as soon as it
              // is consumed; double buffer keeps the previous one around.
              if (window() == 1) kv_resident.erase(op.j);
              if (window() == 2 && op.j >= 1) kv_resident.erase(op.j - 1);
            } else {
              FPDT_CHECK(qhat_ready.contains(op.j))
                  << " attention on never-produced kv chunk " << op.j;
            }
          }
          break;
        }
        case OpKind::kOffloadKv:
          kv_on_host.insert(op.i);
          kv_resident.erase(op.i);
          break;
        case OpKind::kAll2AllOut:
        case OpKind::kOutProjFfn:
        case OpKind::kQkvProject:
          break;
        default:
          throw FpdtError("backward op in forward schedule: " + op.debug());
      }
    }
    // Every chunk's KV must have been produced.
    FPDT_CHECK_EQ(static_cast<std::int64_t>(qhat_ready.size()), u_) << " missing chunks";
    return;
  }

  // Backward legality.
  std::set<std::int64_t> phase_a_done;
  std::int64_t current_outer = -1;
  std::int64_t kv_fetched = -1;
  for (const ScheduleOp& op : ops_) {
    switch (op.kind) {
      case OpKind::kFfnBackward:
        phase_a_done.insert(op.i);
        break;
      case OpKind::kAll2AllOut:
      case OpKind::kAll2AllGrad:
        break;
      case OpKind::kFetchKv:
        FPDT_CHECK_EQ(op.j, current_outer + 1) << " kv fetch out of outer order";
        kv_fetched = op.j;
        break;
      case OpKind::kFetchQGrad:
        FPDT_CHECK(phase_a_done.contains(op.i))
            << " q-grad fetch before phase A of chunk " << op.i;
        break;
      case OpKind::kAttnBwdStep: {
        FPDT_CHECK(phase_a_done.contains(op.i))
            << " attention backward before dô of chunk " << op.i;
        FPDT_CHECK_GE(op.i, op.j) << " causally-masked pair scheduled: " << op.debug();
        if (offload_) {
          FPDT_CHECK_EQ(op.j, kv_fetched) << " kv chunk not fetched";
        }
        if (op.j != current_outer) {
          FPDT_CHECK_EQ(op.j, current_outer + 1) << " outer loop must ascend";
          current_outer = op.j;
        }
        // dq̂ᵢ contributions must arrive in ascending outer order and the
        // final one lands exactly at j == i ("we get its final result
        // after the first inner loop" of outer j == i).
        FPDT_CHECK(!dq_finalized.contains(op.i))
            << " contribution to finalized dq chunk " << op.i;
        FPDT_CHECK_GT(op.j, dq_last_outer[static_cast<std::size_t>(op.i)])
            << " duplicate outer contribution to dq chunk " << op.i;
        dq_last_outer[static_cast<std::size_t>(op.i)] = op.j;
        if (op.i == op.j) dq_finalized.insert(op.i);
        break;
      }
      case OpKind::kOffloadDq:
        FPDT_CHECK(!dq_finalized.contains(op.i))
            << " offloading an already-final dq chunk " << op.i;
        break;
      case OpKind::kQkvBackward:
        FPDT_CHECK(dq_finalized.contains(op.i))
            << " projection backward before dq̂ finalized for chunk " << op.i;
        break;
      default:
        throw FpdtError("forward op in backward schedule: " + op.debug());
    }
  }
  FPDT_CHECK_EQ(static_cast<std::int64_t>(dq_finalized.size()), u_)
      << " not all dq chunks finalized";
}

std::int64_t ChunkSchedule::count(OpKind kind) const {
  std::int64_t n = 0;
  for (const ScheduleOp& op : ops_) {
    if (op.kind == kind) ++n;
  }
  return n;
}

std::string ChunkSchedule::to_string(std::size_t max_ops) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const ScheduleOp& op : ops_) {
    if (shown++ >= max_ops) {
      os << "... (" << ops_.size() - max_ops << " more)\n";
      break;
    }
    static const char* stream_names[] = {"comp", "h2d ", "d2h ", "comm"};
    os << "[" << stream_names[op.stream] << "] " << op.debug() << "\n";
  }
  return os.str();
}

}  // namespace fpdt::core
