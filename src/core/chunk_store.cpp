#include "core/chunk_store.h"

#include "common/check.h"

namespace fpdt::core {

void ChunkStore::check_live() const {
  FPDT_CHECK(device_ != nullptr && host_ != nullptr) << " ChunkStore used after move";
}

runtime::Device& ChunkStore::device() const {
  check_live();
  return *device_;
}

runtime::Host& ChunkStore::host() const {
  check_live();
  return *host_;
}

void ChunkStore::put(const std::string& key, runtime::Buffer buffer) {
  check_live();
  FPDT_CHECK(!chunks_.contains(key)) << " duplicate chunk key " << key;
  if (offload_) {
    chunks_.emplace(key, runtime::offload_to_host(*device_, *host_, std::move(buffer)));
  } else {
    chunks_.emplace(key, std::move(buffer));
  }
}

void ChunkStore::adopt(const std::string& key, runtime::Buffer buffer) {
  check_live();
  FPDT_CHECK(!chunks_.contains(key)) << " duplicate chunk key " << key;
  chunks_.emplace(key, std::move(buffer));
}

runtime::Buffer ChunkStore::extract(const std::string& key) {
  check_live();
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  runtime::Buffer buf = std::move(it->second);
  chunks_.erase(it);
  offload_events_.erase(key);
  return buf;
}

const runtime::Buffer& ChunkStore::peek_buffer(const std::string& key) const {
  check_live();
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  return it->second;
}

runtime::Buffer ChunkStore::take(const std::string& key) {
  check_live();
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  runtime::Buffer buf = std::move(it->second);
  chunks_.erase(it);
  offload_events_.erase(key);
  if (offload_) return runtime::fetch_to_device(*device_, std::move(buf));
  return buf;
}

runtime::Buffer ChunkStore::fetch_copy(const std::string& key) {
  check_live();
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  if (offload_) return runtime::fetch_copy_to_device(*device_, it->second);
  // Resident mode: a working copy still consumes HBM.
  return device_->alloc(it->second.tensor().clone(), it->second.dtype());
}

const Tensor& ChunkStore::peek(const std::string& key) const {
  check_live();
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  return it->second.tensor();
}

std::int64_t ChunkStore::stored_bytes(const std::string& key) const {
  check_live();
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  return it->second.bytes();
}

void ChunkStore::drop(const std::string& key) {
  check_live();
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " dropping missing chunk " << key;
  chunks_.erase(it);
  offload_events_.erase(key);
}

std::string chunk_key(const char* kind, std::int64_t layer, std::int64_t chunk) {
  return std::string(kind) + "." + std::to_string(layer) + "." + std::to_string(chunk);
}

}  // namespace fpdt::core
