#include "core/chunk_store.h"

#include "common/check.h"

namespace fpdt::core {

void ChunkStore::put(const std::string& key, runtime::Buffer buffer) {
  FPDT_CHECK(!chunks_.contains(key)) << " duplicate chunk key " << key;
  if (offload_) {
    chunks_.emplace(key, runtime::offload_to_host(*device_, *host_, std::move(buffer)));
  } else {
    chunks_.emplace(key, std::move(buffer));
  }
}

runtime::Buffer ChunkStore::take(const std::string& key) {
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  runtime::Buffer buf = std::move(it->second);
  chunks_.erase(it);
  if (offload_) return runtime::fetch_to_device(*device_, std::move(buf));
  return buf;
}

runtime::Buffer ChunkStore::fetch_copy(const std::string& key) {
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  if (offload_) return runtime::fetch_copy_to_device(*device_, it->second);
  // Resident mode: a working copy still consumes HBM.
  return device_->alloc(it->second.tensor().clone(), it->second.dtype());
}

const Tensor& ChunkStore::peek(const std::string& key) const {
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " missing chunk " << key;
  return it->second.tensor();
}

void ChunkStore::drop(const std::string& key) {
  auto it = chunks_.find(key);
  FPDT_CHECK(it != chunks_.end()) << " dropping missing chunk " << key;
  chunks_.erase(it);
}

std::string chunk_key(const char* kind, std::int64_t layer, std::int64_t chunk) {
  return std::string(kind) + "." + std::to_string(layer) + "." + std::to_string(chunk);
}

}  // namespace fpdt::core
