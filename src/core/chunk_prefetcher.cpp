#include "core/chunk_prefetcher.h"

#include <exception>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "obs/trace.h"

namespace fpdt::core {

using runtime::Buffer;
using runtime::Device;
using runtime::Event;
using runtime::StagingCharge;

namespace {

// Chunk-lifecycle trace marker on the owning rank's "chunk" lane; value is
// the chunk's logical byte size. Issue markers land at the rank's current
// virtual clock; retire markers fire inside stream closures, which run
// right after the stream span advanced the clock to the transfer's finish.
void trace_chunk(const char* what, const std::string& key, int rank, std::int64_t bytes) {
  if (!obs::tracing_enabled()) return;
  obs::Tracer::instance().instant(obs::kCatChunk, std::string(what) + " " + key, rank, "chunk",
                                  static_cast<double>(bytes), true);
}

}  // namespace

ChunkPrefetcher::ChunkPrefetcher(ChunkStore& store, bool use_streams,
                                 std::int64_t max_in_flight)
    : store_(&store),
      // A resident (non-offloading) store migrates nothing; there is no
      // transfer to overlap, so streams mode degrades to sync.
      use_streams_(use_streams && store.offload()),
      max_in_flight_(max_in_flight) {}

ChunkPrefetcher::~ChunkPrefetcher() {
  if (std::uncaught_exceptions() > 0) {
    // Unwinding (typically an OOM mid-pipeline): executing deferred work
    // now could throw again. Drop it — closure destruction releases the
    // captured staging charges and tensors.
    Device& dev = store_->device();
    dev.h2d_stream().discard_pending();
    dev.d2h_stream().discard_pending();
    return;
  }
  synchronize();
}

void ChunkPrefetcher::synchronize() {
  Device& dev = store_->device();
  dev.h2d_stream().synchronize();
  dev.d2h_stream().synchronize();
}

void ChunkPrefetcher::prefetch(const std::string& key, bool take,
                               std::vector<Event> waits) {
  issue_fetch(key, take, std::move(waits), /*count_against_cap=*/true);
}

void ChunkPrefetcher::survive_transfer_faults(bool is_fetch, const std::string& key) {
  // Fault-injection point: the draw happens *before* the real migration is
  // issued, and the migration runs exactly once after the draws pass — so
  // transient transfer faults are invisible to byte counters and math; only
  // the retry backoff (charged to the transfer stream by the injector's
  // sink) shows up in the timeline.
  const fault::Site site = is_fetch ? fault::Site::kH2D : fault::Site::kD2H;
  const int rank = store_->device().rank();
  const std::string label = std::string(is_fetch ? "retry.fetch." : "retry.offload.") + key;
  const bool ok = fault::retry_transient(fault::BackoffPolicy{}, rank, label, [&] {
    fault::FaultInjector::instance().maybe_throw(
        site, rank, std::string(is_fetch ? "h2d fetch of " : "d2h offload of ") + key);
  });
  if (!ok) {
    // Retries exhausted: degrade to the sync migration path for the rest of
    // the pass. Sync mode is bit-identical by construction, so training
    // survives with only the overlap lost.
    degraded_ = true;
    fault::FaultInjector::instance().note_degraded("sync_fallback");
    FPDT_LOG_WARN << "rank " << rank << ": transfer retries exhausted on " << key
                  << "; prefetcher degrading to sync migration";
  }
}

void ChunkPrefetcher::issue_fetch(const std::string& key, bool take,
                                  std::vector<Event> waits, bool count_against_cap) {
  FPDT_CHECK(!fetches_.contains(key)) << " chunk " << key << " already in flight";
  if (count_against_cap) {
    FPDT_CHECK_LT(in_flight(), max_in_flight_)
        << " prefetch window exceeded issuing " << key;
  }
  if (fault::faults_enabled() && streams_active()) {
    survive_transfer_faults(/*is_fetch=*/true, key);
  }

  if (!streams_active()) {
    // Sync mode: migrate inline at this very program point, so pool charges
    // and transfer counters hit exactly where they do without streams.
    // When we degraded mid-pass, a prior async offload of this key may not
    // have retired yet — drain it so the store actually holds the chunk.
    if (Event off = store_->offload_event(key); off.valid()) off.wait();
    InFetch f;
    f.slot = std::make_shared<Buffer>(take ? store_->take(key) : store_->fetch_copy(key));
    trace_chunk("fetch.sync", key, store_->device().rank(), f.slot->bytes());
    fetches_.emplace(key, std::move(f));
    return;
  }

  Device& dev = store_->device();

  // Size/dtype of the incoming chunk: from the store, or — if its offload
  // has not retired yet — from the pending-put record. Either way a chained
  // fetch must wait on the offload (write-then-read across streams).
  std::int64_t bytes = 0;
  runtime::Dtype dtype = runtime::Dtype::kBF16;
  if (auto it = pending_puts_.find(key); it != pending_puts_.end()) {
    bytes = it->second.bytes;
    dtype = it->second.dtype;
  } else {
    const Buffer& stored = store_->peek_buffer(key);
    bytes = stored.bytes();
    dtype = stored.dtype();
  }
  if (Event off = store_->offload_event(key); off.valid()) waits.push_back(off);

  // Issue-time accounting: transfer counters and the destination staging
  // reserve (the honest OOM point) — exactly where the sync path charges.
  dev.transfers().h2d_bytes += bytes;
  dev.transfers().h2d_count += 1;
  trace_chunk(count_against_cap ? "fetch.issue" : "fetch.demand", key, dev.rank(), bytes);
  auto staging = std::make_shared<StagingCharge>(&dev.hbm(), bytes);

  auto slot = std::make_shared<Buffer>();
  ChunkStore* store = store_;
  Device* devp = &dev;
  Event ready = dev.h2d_stream().enqueue(
      "fetch." + key, dev.rates().h2d_time(bytes), std::move(waits),
      [store, devp, slot, staging, key, take, dtype, bytes]() {
        // Retire: the reserve converts into the real data charge (release
        // first — a dip, never a transient double charge).
        staging->release();
        Tensor t = take ? store->extract(key).detach()
                        : store->peek_buffer(key).tensor().clone();
        *slot = devp->alloc(std::move(t), dtype);
        trace_chunk("fetch.retire", key, devp->rank(), bytes);
      });
  fetches_.emplace(key, InFetch{ready, std::move(slot)});
}

ChunkPrefetcher::Fetched ChunkPrefetcher::acquire(const std::string& key, bool take) {
  auto it = fetches_.find(key);
  if (it == fetches_.end()) {
    // Not prefetched: fetch on the spot, still through the H2D stream so
    // the transfer shows up (as exposed time) in the span ledger.
    issue_fetch(key, take, {}, /*count_against_cap=*/false);
    it = fetches_.find(key);
  }
  Fetched f;
  f.ready = it->second.ready;
  if (f.ready.valid()) f.ready.wait();
  f.buffer = std::move(*it->second.slot);
  fetches_.erase(it);
  FPDT_CHECK(f.buffer.defined()) << " fetch of " << key << " produced no buffer";
  return f;
}

Event ChunkPrefetcher::put_async(const std::string& key, Buffer buffer,
                                 std::vector<Event> waits) {
  if (fault::faults_enabled() && streams_active()) {
    survive_transfer_faults(/*is_fetch=*/false, key);
  }
  if (!streams_active()) {
    trace_chunk("offload.sync", key, store_->device().rank(), buffer.bytes());
    store_->put(key, std::move(buffer));
    return Event();
  }
  FPDT_CHECK(!store_->contains(key) && !pending_puts_.contains(key))
      << " duplicate chunk key " << key;

  Device& dev = store_->device();
  const std::int64_t bytes = buffer.bytes();
  const runtime::Dtype dtype = buffer.dtype();

  // Issue-time accounting mirrors offload_to_host: the device charge drops
  // now (the chunk is leaving HBM), the D2H counters tick, and the host
  // pool stages the incoming bytes until the transfer retires.
  auto data = std::make_shared<Tensor>(buffer.detach());
  dev.transfers().d2h_bytes += bytes;
  dev.transfers().d2h_count += 1;
  trace_chunk("offload.issue", key, dev.rank(), bytes);
  auto staging = std::make_shared<StagingCharge>(&store_->host().pool(), bytes);

  pending_puts_[key] = PendingPut{bytes, dtype};
  ChunkStore* store = store_;
  ChunkPrefetcher* self = this;
  const int rank = dev.rank();
  Event done = dev.d2h_stream().enqueue(
      "offload." + key, dev.rates().d2h_time(bytes), std::move(waits),
      [store, self, data, staging, key, dtype, bytes, rank]() {
        staging->release();
        store->adopt(key, store->host().alloc(std::move(*data), dtype));
        self->pending_puts_.erase(key);
        trace_chunk("offload.retire", key, rank, bytes);
      });
  store_->set_offload_event(key, done);
  return done;
}

}  // namespace fpdt::core
