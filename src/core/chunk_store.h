// Keyed storage for cached sequence chunks (q̂, k̂, v̂, ô, lse, y, …).
//
// In "offload" mode a stored chunk migrates device → host (counted as D2H
// traffic) and fetches migrate back; in "resident" mode chunks keep their
// HBM charge — the "FPDT w. chunking" baseline whose footprint grows with u.
// Either way the *data* is identical; only where the bytes are charged
// differs, which is exactly the paper's distinction.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "runtime/device.h"

namespace fpdt::core {

class ChunkStore {
 public:
  ChunkStore(runtime::Device& device, runtime::Host& host, bool offload)
      : device_(&device), host_(&host), offload_(offload) {}

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;
  ChunkStore(ChunkStore&&) = default;
  ChunkStore& operator=(ChunkStore&&) = default;

  // Stores a device buffer under `key` (offloads if configured).
  void put(const std::string& key, runtime::Buffer buffer);

  // Removes and returns the chunk as a device buffer (fetches if offloaded).
  runtime::Buffer take(const std::string& key);

  // Returns a device copy, leaving the stored chunk in place (backward
  // fetches KV chunks u-i times; the cached copy must survive).
  runtime::Buffer fetch_copy(const std::string& key);

  // Read-only peek at the stored tensor without any migration (used by
  // code that only needs metadata/shape).
  const Tensor& peek(const std::string& key) const;

  bool contains(const std::string& key) const { return chunks_.contains(key); }
  void drop(const std::string& key);
  void clear() { chunks_.clear(); }
  std::size_t size() const { return chunks_.size(); }

 private:
  runtime::Device* device_;
  runtime::Host* host_;
  bool offload_;
  std::unordered_map<std::string, runtime::Buffer> chunks_;
};

// Key helpers: chunk keys are "<kind>.<layer>.<chunk>".
std::string chunk_key(const char* kind, std::int64_t layer, std::int64_t chunk);

}  // namespace fpdt::core
