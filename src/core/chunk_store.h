// Keyed storage for cached sequence chunks (q̂, k̂, v̂, ô, lse, y, …).
//
// In "offload" mode a stored chunk migrates device → host (counted as D2H
// traffic) and fetches migrate back; in "resident" mode chunks keep their
// HBM charge — the "FPDT w. chunking" baseline whose footprint grows with u.
// Either way the *data* is identical; only where the bytes are charged
// differs, which is exactly the paper's distinction.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "runtime/device.h"
#include "runtime/stream.h"

namespace fpdt::core {

class ChunkStore {
 public:
  ChunkStore(runtime::Device& device, runtime::Host& host, bool offload)
      : device_(&device), host_(&host), offload_(offload) {}

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;
  // Moves null the source's pointers: a defaulted move would leave the
  // moved-from store with live device_/host_ and a usable API, silently
  // double-charging pools. Every accessor checks against use-after-move.
  ChunkStore(ChunkStore&& other) noexcept
      : device_(std::exchange(other.device_, nullptr)),
        host_(std::exchange(other.host_, nullptr)),
        offload_(other.offload_),
        chunks_(std::move(other.chunks_)),
        offload_events_(std::move(other.offload_events_)) {
    other.chunks_.clear();
    other.offload_events_.clear();
  }
  ChunkStore& operator=(ChunkStore&& other) noexcept {
    if (this != &other) {
      device_ = std::exchange(other.device_, nullptr);
      host_ = std::exchange(other.host_, nullptr);
      offload_ = other.offload_;
      chunks_ = std::move(other.chunks_);
      offload_events_ = std::move(other.offload_events_);
      other.chunks_.clear();
      other.offload_events_.clear();
    }
    return *this;
  }

  // Stores a device buffer under `key` (offloads if configured).
  void put(const std::string& key, runtime::Buffer buffer);

  // Removes and returns the chunk as a device buffer (fetches if offloaded).
  runtime::Buffer take(const std::string& key);

  // Returns a device copy, leaving the stored chunk in place (backward
  // fetches KV chunks u-i times; the cached copy must survive).
  runtime::Buffer fetch_copy(const std::string& key);

  // Read-only peek at the stored tensor without any migration (used by
  // code that only needs metadata/shape).
  const Tensor& peek(const std::string& key) const;

  bool contains(const std::string& key) const { return chunks_.contains(key); }
  void drop(const std::string& key);
  void clear() {
    chunks_.clear();
    offload_events_.clear();
  }
  std::size_t size() const { return chunks_.size(); }

  bool offload() const { return offload_; }
  runtime::Device& device() const;
  runtime::Host& host() const;

  // Logical bytes of the stored chunk (whichever pool holds the charge).
  std::int64_t stored_bytes(const std::string& key) const;

  // ---- Async paths (core::ChunkPrefetcher) ----------------------------------
  // Inserts a chunk whose migration the caller already performed (the
  // prefetcher retires transfers on its streams, then adopts the result).
  void adopt(const std::string& key, runtime::Buffer buffer);

  // Removes and returns the stored buffer *without* any migration or
  // transfer counting — the prefetcher performs those itself at the point
  // its stream task retires.
  runtime::Buffer extract(const std::string& key);

  // Stored buffer (charge + dtype visible), no migration.
  const runtime::Buffer& peek_buffer(const std::string& key) const;

  // Completion event of an asynchronous offload of `key`. A later prefetch
  // of the same key must wait on it (write-then-read on the host copy).
  void set_offload_event(const std::string& key, runtime::Event event) {
    offload_events_[key] = event;
  }
  runtime::Event offload_event(const std::string& key) const {
    auto it = offload_events_.find(key);
    return it != offload_events_.end() ? it->second : runtime::Event();
  }

 private:
  void check_live() const;

  runtime::Device* device_;
  runtime::Host* host_;
  bool offload_;
  std::unordered_map<std::string, runtime::Buffer> chunks_;
  std::unordered_map<std::string, runtime::Event> offload_events_;
};

// Key helpers: chunk keys are "<kind>.<layer>.<chunk>".
std::string chunk_key(const char* kind, std::int64_t layer, std::int64_t chunk);

}  // namespace fpdt::core
