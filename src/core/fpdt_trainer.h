// FpdtTrainer — end-to-end FPDT training step over an emulated
// sequence-parallel group.
//
// Wraps an existing nn::Model (weights are shared, not copied) and executes
// its training step with the full FPDT pipeline:
//   - rank-ordinal sharding of inputs and labels (Fig. 6),
//   - per-rank embedding,
//   - every Transformer block through FpdtBlockExecutor (chunked, offloaded,
//     activation-checkpointed),
//   - per-rank final norm and chunked loss head (§5.4 rule),
//   - full backward to embedding gradients.
//
// Because the weights are the very tensors of the wrapped model, a step
// through FpdtTrainer is directly comparable (loss and gradients) to
// nn::Model::train_step_grads on the same tokens — the property behind the
// Fig. 14 convergence-equivalence experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fpdt_block.h"
#include "core/fpdt_env.h"
#include "data/rank_ordinal.h"
#include "nn/model.h"
#include "parallel/zero/zero_engine.h"

namespace fpdt::core {

class FpdtTrainer {
 public:
  // hbm_capacity < 0 = unlimited. A finite capacity makes the trainer throw
  // OutOfMemoryError exactly where a real run would OOM.
  FpdtTrainer(nn::Model& model, int world, FpdtConfig cfg,
              std::int64_t hbm_capacity_bytes = -1);

  // tokens: s_global + 1 ids with s_global divisible by world * u.
  // Returns mean token loss; accumulates grads into the wrapped model.
  double train_step_grads(const std::vector<std::int32_t>& tokens);

  // Gradient accumulation over a batch of sequences (the paper evaluates at
  // batch 1 to maximise sequence length; Fig. 14's baseline trains at batch
  // 256 — this is how). Gradients are scaled so the result equals the mean
  // over all tokens of all sequences. Returns the batch-mean loss.
  double train_batch_grads(const std::vector<std::vector<std::int32_t>>& batch);

  FpdtEnv& env() { return env_; }
  nn::Model& model() { return *model_; }

  // Attached when cfg.zero_stage >= 0 (nullptr at the seed's -1 sentinel).
  zero::ZeroEngine* zero_engine() { return zero_.get(); }

 private:
  // Walks one parameter group for ZeRO gather/bucket windows.
  zero::ParamWalk walk_embed();
  zero::ParamWalk walk_block(std::size_t l);
  zero::ParamWalk walk_head();

  nn::Model* model_;
  FpdtEnv env_;
  data::RankOrdinalSharder sharder_;
  std::vector<FpdtBlockExecutor> executors_;
  std::unique_ptr<zero::ZeroEngine> zero_;
};

}  // namespace fpdt::core
