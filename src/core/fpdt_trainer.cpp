#include "core/fpdt_trainer.h"

#include "common/check.h"
#include "obs/trace.h"

namespace fpdt::core {

namespace {

// Models a non-block phase (embedding, loss head) as a span on the rank's
// compute stream so traces and timeline reports cover the whole step, not
// just the transformer blocks. Gated on tracing: without a tracer the span
// ledger stays exactly as the seed produced it (timeline-shape tests).
void trace_phase_span(FpdtEnv& env, int rank, const char* label, double flops) {
  if (!obs::tracing_enabled() || !env.cfg().stream_prefetch) return;
  runtime::Device& dev = env.device(rank);
  dev.compute_stream().enqueue(label, dev.rates().gemm_time(flops));
  dev.compute_stream().synchronize();
}

}  // namespace

FpdtTrainer::FpdtTrainer(nn::Model& model, int world, FpdtConfig cfg,
                         std::int64_t hbm_capacity_bytes)
    : model_(&model),
      env_(world, cfg, hbm_capacity_bytes),
      sharder_(world, cfg.chunks_per_rank) {
  executors_.reserve(model.blocks().size());
  for (std::size_t l = 0; l < model.blocks().size(); ++l) {
    executors_.emplace_back(model.blocks()[l], static_cast<std::int64_t>(l), env_);
  }
  if (cfg.zero_stage >= 0) {
    zero_ = std::make_unique<zero::ZeroEngine>(model, env_,
                                               zero::ZeroConfig{cfg.zero_stage});
  }
}

zero::ParamWalk FpdtTrainer::walk_embed() {
  return [this](const nn::ParamVisitor& fn) { model_->embedding().visit(fn); };
}

zero::ParamWalk FpdtTrainer::walk_block(std::size_t l) {
  return [this, l](const nn::ParamVisitor& fn) { model_->blocks()[l].visit(fn); };
}

zero::ParamWalk FpdtTrainer::walk_head() {
  return [this](const nn::ParamVisitor& fn) {
    model_->final_norm().visit(fn);
    model_->lm_head().visit(fn);
  };
}

double FpdtTrainer::train_batch_grads(const std::vector<std::vector<std::int32_t>>& batch) {
  // Assumes gradients are zero on entry (call model().zero_grads() between
  // optimizer steps, or rely on Adam::step which zeroes after updating).
  FPDT_CHECK(!batch.empty()) << " empty batch";
  double loss_sum = 0.0;
  for (const std::vector<std::int32_t>& tokens : batch) {
    loss_sum += train_step_grads(tokens);
  }
  // train_step_grads scales each sequence's gradient by 1/s_global; divide
  // the accumulated gradients by the batch size to get the batch mean.
  const float inv = 1.0f / static_cast<float>(batch.size());
  model_->visit_params([&](nn::Param& p) { scale_(p.grad, inv); });
  return loss_sum / static_cast<double>(batch.size());
}

double FpdtTrainer::train_step_grads(const std::vector<std::int32_t>& tokens) {
  const int P = env_.world();
  const std::int64_t s_global = static_cast<std::int64_t>(tokens.size()) - 1;
  std::vector<data::RankShard> shards = sharder_.shard_tokens(tokens);

  // ---- Embedding per rank.
  std::vector<Tensor> h;
  h.reserve(static_cast<std::size_t>(P));
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "embed");
    zero::GroupScope zs(zero_.get(), "embed", walk_embed(), /*grad_bucket=*/false);
    for (int r = 0; r < P; ++r) {
      h.push_back(model_->embedding().forward(shards[static_cast<std::size_t>(r)].inputs));
      trace_phase_span(env_, r, "embed", 2.0 * static_cast<double>(h.back().numel()));
    }
  }

  // ---- Blocks with activation checkpointing: keep each block's per-rank
  // input; everything else is recomputed chunk-wise in backward.
  std::vector<std::vector<Tensor>> block_inputs;
  block_inputs.reserve(executors_.size());
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "blocks.forward");
    for (std::size_t l = 0; l < executors_.size(); ++l) {
      // ZeRO-3: this block's params are gathered only for its execution
      // window — the working set stays one layer, not the whole model.
      zero::GroupScope zs(zero_.get(), "block" + std::to_string(l), walk_block(l),
                          /*grad_bucket=*/false);
      block_inputs.push_back(h);
      h = executors_[l].forward(h);
    }
  }

  // ---- Final norm + chunked loss head per rank. The loss is scaled by the
  // *global* token count so per-rank gradient contributions compose into
  // exactly the reference mean-loss gradient.
  std::int64_t lm_chunks = env_.cfg().lm_head_chunks;
  if (lm_chunks <= 0) lm_chunks = model_->lm_head().suggested_chunks();
  double loss_sum = 0.0;
  std::vector<Tensor> dh(static_cast<std::size_t>(P));
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "loss_head");
    // forward_backward computes head/norm grads here, so the ZeRO-2/3 grad
    // bucket is live for this window.
    zero::GroupScope zs(zero_.get(), "head", walk_head(), /*grad_bucket=*/true);
    const double vocab = static_cast<double>(model_->embedding().vocab());
    for (int r = 0; r < P; ++r) {
      nn::NormStats st;
      Tensor hn = model_->final_norm().forward(h[static_cast<std::size_t>(r)], st);
      nn::LossResult res = model_->lm_head().forward_backward(
          hn, shards[static_cast<std::size_t>(r)].labels, lm_chunks, s_global,
          &env_.device(r).hbm());
      loss_sum += res.loss_sum;
      dh[static_cast<std::size_t>(r)] =
          model_->final_norm().backward(res.dx, h[static_cast<std::size_t>(r)], st);
      // 2sdv forward projection + 4sdv backward (dW and dx); numel = s*d.
      trace_phase_span(env_, r, "loss",
                       6.0 * vocab * static_cast<double>(hn.numel()));
    }
  }

  // ---- Backward through blocks in reverse.
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "blocks.backward");
    for (std::size_t l = executors_.size(); l-- > 0;) {
      zero::GroupScope zs(zero_.get(), "block" + std::to_string(l), walk_block(l),
                          /*grad_bucket=*/true);
      dh = executors_[l].backward(dh, block_inputs[l]);
    }
  }

  // ---- Embedding backward per rank.
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "embed.backward");
    zero::GroupScope zs(zero_.get(), "embed", walk_embed(), /*grad_bucket=*/true);
    for (int r = 0; r < P; ++r) {
      model_->embedding().backward(dh[static_cast<std::size_t>(r)],
                                   shards[static_cast<std::size_t>(r)].inputs);
      trace_phase_span(env_, r, "bwd.embed",
                       2.0 * static_cast<double>(dh[static_cast<std::size_t>(r)].numel()));
    }
  }
  return loss_sum / static_cast<double>(s_global);
}

}  // namespace fpdt::core
