#include "core/fpdt_block.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "nn/attention.h"

namespace fpdt::core {

namespace {

using nn::AttentionOutput;
using nn::NormStats;
using nn::OnlineAttnState;
using runtime::Allocation;
using runtime::Buffer;
using runtime::Device;

// Collects tensor handles (shared storage, no copy) from per-rank buffers
// for a collective call.
std::vector<Tensor> tensors_of(const std::vector<Buffer>& buffers) {
  std::vector<Tensor> out;
  out.reserve(buffers.size());
  for (const Buffer& b : buffers) out.push_back(b.tensor());
  return out;
}

}  // namespace

FpdtBlockExecutor::FpdtBlockExecutor(nn::TransformerBlock& block, std::int64_t layer_index,
                                     FpdtEnv& env)
    : block_(&block), layer_(layer_index), env_(&env) {}

FpdtBlockExecutor::Geometry FpdtBlockExecutor::geometry(
    const std::vector<Tensor>& x_local) const {
  const int P = env_->world();
  FPDT_CHECK_EQ(static_cast<int>(x_local.size()), P) << " rank count";
  Geometry g;
  g.u = env_->cfg().chunks_per_rank;
  g.s_local = x_local[0].dim(0);
  g.d_model = x_local[0].dim(1);
  FPDT_CHECK_EQ(g.s_local % g.u, 0) << " s_local " << g.s_local << " not divisible into " << g.u
                                    << " chunks";
  g.c_local = g.s_local / g.u;
  g.c_global = g.c_local * P;
  return g;
}

std::int64_t FpdtBlockExecutor::local_pos0(int rank, std::int64_t chunk,
                                           std::int64_t c_local) const {
  // Rank-ordinal layout: local chunk i on rank r is global chunk i*P + r.
  return (chunk * env_->world() + rank) * c_local;
}

std::vector<Tensor> FpdtBlockExecutor::forward(const std::vector<Tensor>& x_local) {
  if (!env_->cfg().cache_forward_outputs) return run_forward(x_local, nullptr);
  // Cache the chunk tensors the backward pass needs, straight from the real
  // forward pass (the paper's scheme: backward then needs no attention
  // recompute and no extra All2All).
  pending_stores_.clear();
  pending_stores_.reserve(static_cast<std::size_t>(env_->world()));
  for (int r = 0; r < env_->world(); ++r) {
    pending_stores_.emplace_back(env_->device(r), env_->host(), env_->cfg().offload);
  }
  return run_forward(x_local, &pending_stores_);
}

std::int64_t FpdtBlockExecutor::cached_host_bytes() const {
  return env_->host().pool().used();
}

std::vector<Tensor> FpdtBlockExecutor::run_forward(const std::vector<Tensor>& x_local,
                                                   std::vector<ChunkStore>* stores) {
  const Geometry g = geometry(x_local);
  const int P = env_->world();
  const bool caching = stores != nullptr;

  // Transient stores for the forward-only path (k̂/v̂ of earlier chunks must
  // live somewhere even when nothing is kept for backward).
  std::vector<ChunkStore> transient;
  std::vector<ChunkStore>* kv_stores = stores;
  if (!caching) {
    transient.reserve(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      transient.emplace_back(env_->device(r), env_->host(), env_->cfg().offload);
    }
    kv_stores = &transient;
  }

  std::vector<Tensor> z_local;
  z_local.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) z_local.push_back(Tensor::zeros(x_local[0].shape()));

  for (std::int64_t i = 0; i < g.u; ++i) {
    // ---- QKV projection on each rank's local chunk (Fig. 4). -------------
    std::vector<Buffer> qhat(static_cast<std::size_t>(P)), khat(static_cast<std::size_t>(P)),
        vhat(static_cast<std::size_t>(P));
    {
      std::vector<Buffer> q_loc(static_cast<std::size_t>(P)), k_loc(static_cast<std::size_t>(P)),
          v_loc(static_cast<std::size_t>(P));
      for (int r = 0; r < P; ++r) {
        Device& dev = env_->device(r);
        dev.hbm().set_phase_label("attn.qkv_proj");
        Tensor x_i = x_local[static_cast<std::size_t>(r)].slice0(i * g.c_local,
                                                                 (i + 1) * g.c_local);
        Allocation x_charge(&dev.hbm(), x_i.numel() * 2);  // fetched hidden chunk
        NormStats st1;
        Tensor xn = block_->norm1().forward(x_i, st1);
        Allocation xn_charge(&dev.hbm(), xn.numel() * 2);
        nn::AttentionLayer::Qkv qkv =
            block_->attention().project_qkv(xn, local_pos0(r, i, g.c_local));
        q_loc[static_cast<std::size_t>(r)] = dev.alloc(std::move(qkv.q));
        k_loc[static_cast<std::size_t>(r)] = dev.alloc(std::move(qkv.k));
        v_loc[static_cast<std::size_t>(r)] = dev.alloc(std::move(qkv.v));
      }
      // ---- Chunked All2All: scatter heads, gather sequence. --------------
      // Not in-place: send buffers (q/k/v_loc) and receive buffers coexist,
      // but both are chunk-sized — the Table-2 "6Nd" spike shrinks by u.
      std::vector<Tensor> qh = env_->pg().all_to_all_heads_to_seq(tensors_of(q_loc));
      std::vector<Tensor> kh = env_->pg().all_to_all_heads_to_seq(tensors_of(k_loc));
      std::vector<Tensor> vh = env_->pg().all_to_all_heads_to_seq(tensors_of(v_loc));
      for (int r = 0; r < P; ++r) {
        Device& dev = env_->device(r);
        dev.hbm().set_phase_label("attn.all2all_recv");
        qhat[static_cast<std::size_t>(r)] = dev.alloc(std::move(qh[static_cast<std::size_t>(r)]));
        khat[static_cast<std::size_t>(r)] = dev.alloc(std::move(kh[static_cast<std::size_t>(r)]));
        vhat[static_cast<std::size_t>(r)] = dev.alloc(std::move(vh[static_cast<std::size_t>(r)]));
      }
    }

    // ---- Online attention of q̂ᵢ against k̂₀..k̂ᵢ (Fig. 5). -----------------
    // Rank-local work between collectives: forked across threads (per-rank
    // buffers are disjoint; the shared host pool is thread-safe).
    std::vector<Buffer> ohat(static_cast<std::size_t>(P)), lse(static_cast<std::size_t>(P));
    parallel_for_ranks(P, [&](int r) {
      Device& dev = env_->device(r);
      dev.hbm().set_phase_label("attn.online");
      ChunkStore& store = (*kv_stores)[static_cast<std::size_t>(r)];
      const Tensor& q = qhat[static_cast<std::size_t>(r)].tensor();
      OnlineAttnState state = OnlineAttnState::create(q.dim(0), q.dim(1), q.dim(2));
      Allocation state_charge(&dev.hbm(),
                              (state.acc.numel() + state.m.numel() + state.l.numel()) * 2);
      // Earlier KV chunks are fetched from the store one (strict) or two
      // (double-buffer) at a time.
      Buffer k_cur, v_cur, k_next, v_next;
      for (std::int64_t j = 0; j < i; ++j) {
        if (j == 0) {
          k_cur = store.fetch_copy(chunk_key("khat", layer_, 0));
          v_cur = store.fetch_copy(chunk_key("vhat", layer_, 0));
        }
        if (env_->cfg().double_buffer && j + 1 < i) {
          // Prefetch of chunk j+1 overlaps the compute on chunk j.
          k_next = store.fetch_copy(chunk_key("khat", layer_, j + 1));
          v_next = store.fetch_copy(chunk_key("vhat", layer_, j + 1));
        }
        nn::online_attn_step(state, q, k_cur.tensor(), v_cur.tensor(), /*causal=*/true,
                             i * g.c_global, j * g.c_global);
        if (env_->cfg().double_buffer && j + 1 < i) {
          k_cur = std::move(k_next);
          v_cur = std::move(v_next);
        } else if (j + 1 < i) {
          k_cur = store.fetch_copy(chunk_key("khat", layer_, j + 1));
          v_cur = store.fetch_copy(chunk_key("vhat", layer_, j + 1));
        }
      }
      // Diagonal chunk: k̂ᵢ/v̂ᵢ are already on device from the All2All.
      nn::online_attn_step(state, q, khat[static_cast<std::size_t>(r)].tensor(),
                           vhat[static_cast<std::size_t>(r)].tensor(), /*causal=*/true,
                           i * g.c_global, i * g.c_global);
      AttentionOutput out = nn::online_attn_finalize(state);
      ohat[static_cast<std::size_t>(r)] = dev.alloc(std::move(out.out));
      lse[static_cast<std::size_t>(r)] = dev.alloc(std::move(out.lse));

      // Cache k̂ᵢ/v̂ᵢ (and, for backward, q̂ᵢ + lse). "We offload q̂ᵢ, k̂ᵢ, v̂ᵢ
      // to the host memory once they are done for forward computation."
      store.put(chunk_key("khat", layer_, i), std::move(khat[static_cast<std::size_t>(r)]));
      store.put(chunk_key("vhat", layer_, i), std::move(vhat[static_cast<std::size_t>(r)]));
      if (caching) {
        store.put(chunk_key("qhat", layer_, i), std::move(qhat[static_cast<std::size_t>(r)]));
        store.put(chunk_key("lse", layer_, i), std::move(lse[static_cast<std::size_t>(r)]));
      }
    });

    // ---- All2All back + output projection + FFN. --------------------------
    std::vector<Tensor> o_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(ohat));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkStore& store = (*kv_stores)[static_cast<std::size_t>(r)];
      if (caching) {
        store.put(chunk_key("ohat", layer_, i), std::move(ohat[static_cast<std::size_t>(r)]));
      } else {
        ohat[static_cast<std::size_t>(r)].release();
      }
      dev.hbm().set_phase_label("attn.out_proj");
      Buffer o_buf = dev.alloc(std::move(o_loc[static_cast<std::size_t>(r)]));
      Tensor x_i =
          x_local[static_cast<std::size_t>(r)].slice0(i * g.c_local, (i + 1) * g.c_local);
      Buffer y_buf = dev.alloc(add(x_i, block_->attention().project_out(o_buf.tensor())));
      o_buf.release();

      dev.hbm().set_phase_label("ffn");
      NormStats st2;
      Tensor yn = block_->norm2().forward(y_buf.tensor(), st2);
      Allocation yn_charge(&dev.hbm(), yn.numel() * 2);
      Tensor f =
          block_->ffn().forward(yn, env_->cfg().ffn_chunk_multiplier, &dev.hbm());
      z_local[static_cast<std::size_t>(r)]
          .slice0(i * g.c_local, (i + 1) * g.c_local)
          .copy_from(add(y_buf.tensor(), f));
      if (caching) {
        store.put(chunk_key("y", layer_, i), std::move(y_buf));
      }
    }
  }
  return z_local;
}

std::vector<Tensor> FpdtBlockExecutor::backward(const std::vector<Tensor>& dz_local,
                                                const std::vector<Tensor>& x_local) {
  if (env_->cfg().cache_forward_outputs && !pending_stores_.empty()) {
    // Fast path: the real forward already cached q̂/k̂/v̂/ô/lse/y.
    std::vector<ChunkStore> stores = std::move(pending_stores_);
    pending_stores_.clear();
    return backward_phases(dz_local, x_local, stores);
  }
  // Recompute path (plain activation checkpointing): re-run the chunked
  // forward, materialising and offloading the caches chunk-wise.
  std::vector<ChunkStore> stores;
  stores.reserve(static_cast<std::size_t>(env_->world()));
  for (int r = 0; r < env_->world(); ++r) {
    stores.emplace_back(env_->device(r), env_->host(), env_->cfg().offload);
  }
  run_forward(x_local, &stores);
  return backward_phases(dz_local, x_local, stores);
}

std::vector<Tensor> FpdtBlockExecutor::backward_phases(const std::vector<Tensor>& dz_local,
                                                       const std::vector<Tensor>& x_local,
                                                       std::vector<ChunkStore>& stores) {
  const Geometry g = geometry(x_local);
  const int P = env_->world();

  std::vector<Tensor> dx_local;
  dx_local.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) dx_local.push_back(Tensor::zeros(x_local[0].shape()));

  // ---- Phase A: FFN / norm2 / Wo backward per chunk ("We first calculate
  // the gradients in FFN, then the attention", Fig. 13). Produces the
  // attention-output gradients dôᵢ and softmax row statistics Dᵢ.
  for (std::int64_t i = 0; i < g.u; ++i) {
    std::vector<Buffer> dy_tot(static_cast<std::size_t>(P));
    std::vector<Buffer> ohat_i(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkStore& store = stores[static_cast<std::size_t>(r)];
      dev.hbm().set_phase_label("bwd.ffn");
      Tensor dz_i =
          dz_local[static_cast<std::size_t>(r)].slice0(i * g.c_local, (i + 1) * g.c_local);
      Allocation dz_charge(&dev.hbm(), dz_i.numel() * 2);
      Buffer y_buf = store.take(chunk_key("y", layer_, i));
      NormStats st2;
      Tensor yn = block_->norm2().forward(y_buf.tensor(), st2);
      Allocation yn_charge(&dev.hbm(), yn.numel() * 2);
      Tensor dyn =
          block_->ffn().backward(dz_i, yn, env_->cfg().ffn_chunk_multiplier, &dev.hbm());
      Tensor dy = add(dz_i, block_->norm2().backward(dyn, y_buf.tensor(), st2));
      // Residual path contribution to dx.
      Tensor dx_view =
          dx_local[static_cast<std::size_t>(r)].slice0(i * g.c_local, (i + 1) * g.c_local);
      add_(dx_view, dy);
      dy_tot[static_cast<std::size_t>(r)] = dev.alloc(std::move(dy));
      ohat_i[static_cast<std::size_t>(r)] = store.take(chunk_key("ohat", layer_, i));
    }
    // Recover the rank-local attention output to backprop Wo, then return
    // its gradient to the global (head-sharded) layout for phase B.
    std::vector<Tensor> o_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(ohat_i));
    std::vector<Buffer> dao(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      dev.hbm().set_phase_label("bwd.out_proj");
      dao[static_cast<std::size_t>(r)] = dev.alloc(block_->attention().backward_out(
          dy_tot[static_cast<std::size_t>(r)].tensor(), o_loc[static_cast<std::size_t>(r)]));
      dy_tot[static_cast<std::size_t>(r)].release();
    }
    std::vector<Tensor> dohat = env_->pg().all_to_all_heads_to_seq(tensors_of(dao));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkStore& store = stores[static_cast<std::size_t>(r)];
      Tensor D = nn::online_attn_backward_D(ohat_i[static_cast<std::size_t>(r)].tensor(),
                                            dohat[static_cast<std::size_t>(r)]);
      ohat_i[static_cast<std::size_t>(r)].release();
      store.put(chunk_key("dohat", layer_, i),
                dev.alloc(std::move(dohat[static_cast<std::size_t>(r)])));
      store.put(chunk_key("D", layer_, i), dev.alloc(std::move(D)));
    }
  }

  // ---- Phase B: the nested double-buffered attention backward (Fig. 7).
  // Outer loop over KV chunks j, inner over query chunks i >= j.
  for (std::int64_t j = 0; j < g.u; ++j) {
    std::vector<Buffer> k_j(static_cast<std::size_t>(P)), v_j(static_cast<std::size_t>(P));
    std::vector<Buffer> dk_j(static_cast<std::size_t>(P)), dv_j(static_cast<std::size_t>(P));
    std::vector<Buffer> dq_final(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkStore& store = stores[static_cast<std::size_t>(r)];
      dev.hbm().set_phase_label("bwd.attn");
      k_j[static_cast<std::size_t>(r)] = store.take(chunk_key("khat", layer_, j));
      v_j[static_cast<std::size_t>(r)] = store.take(chunk_key("vhat", layer_, j));
      dk_j[static_cast<std::size_t>(r)] =
          dev.alloc(Tensor::zeros(k_j[static_cast<std::size_t>(r)].tensor().shape()));
      dv_j[static_cast<std::size_t>(r)] =
          dev.alloc(Tensor::zeros(v_j[static_cast<std::size_t>(r)].tensor().shape()));
    }
    for (std::int64_t i = j; i < g.u; ++i) {
      const bool last_use = (i == j);  // chunk i's q-side data retires at outer j == i
      parallel_for_ranks(P, [&](int r) {
        Device& dev = env_->device(r);
        ChunkStore& store = stores[static_cast<std::size_t>(r)];
        Buffer q_i = last_use ? store.take(chunk_key("qhat", layer_, i))
                              : store.fetch_copy(chunk_key("qhat", layer_, i));
        Buffer do_i = last_use ? store.take(chunk_key("dohat", layer_, i))
                               : store.fetch_copy(chunk_key("dohat", layer_, i));
        Buffer lse_i = last_use ? store.take(chunk_key("lse", layer_, i))
                                : store.fetch_copy(chunk_key("lse", layer_, i));
        Buffer D_i = last_use ? store.take(chunk_key("D", layer_, i))
                              : store.fetch_copy(chunk_key("D", layer_, i));
        // dq̂ᵢ accumulates across outer iterations; it lives in the store
        // (host memory when offloading) between visits.
        Buffer dq_i = (j == 0)
                          ? dev.alloc(Tensor::zeros(q_i.tensor().shape()))
                          : store.take(chunk_key("dqhat", layer_, i));
        nn::online_attn_backward_step(
            q_i.tensor(), k_j[static_cast<std::size_t>(r)].tensor(),
            v_j[static_cast<std::size_t>(r)].tensor(), do_i.tensor(), lse_i.tensor(),
            D_i.tensor(), /*causal=*/true, i * g.c_global, j * g.c_global, dq_i.tensor(),
            dk_j[static_cast<std::size_t>(r)].tensor(),
            dv_j[static_cast<std::size_t>(r)].tensor());
        if (i == j) {
          // "For dq0, we get its final result after the first inner loop."
          dq_final[static_cast<std::size_t>(r)] = std::move(dq_i);
        } else {
          store.put(chunk_key("dqhat", layer_, i), std::move(dq_i));
        }
      });
    }
    // dk̂ⱼ/dv̂ⱼ are final after the outer iteration; All2All the finals back
    // to their home ranks and run the projection + norm1 backward there.
    std::vector<Tensor> dq_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(dq_final));
    std::vector<Tensor> dk_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(dk_j));
    std::vector<Tensor> dv_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(dv_j));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      dev.hbm().set_phase_label("bwd.qkv_proj");
      dq_final[static_cast<std::size_t>(r)].release();
      dk_j[static_cast<std::size_t>(r)].release();
      dv_j[static_cast<std::size_t>(r)].release();
      k_j[static_cast<std::size_t>(r)].release();
      v_j[static_cast<std::size_t>(r)].release();
      Tensor x_j =
          x_local[static_cast<std::size_t>(r)].slice0(j * g.c_local, (j + 1) * g.c_local);
      NormStats st1;
      Tensor xn = block_->norm1().forward(x_j, st1);
      Tensor dxn = block_->attention().backward_qkv(
          dq_loc[static_cast<std::size_t>(r)], dk_loc[static_cast<std::size_t>(r)],
          dv_loc[static_cast<std::size_t>(r)], xn, local_pos0(r, j, g.c_local));
      Tensor dx_view =
          dx_local[static_cast<std::size_t>(r)].slice0(j * g.c_local, (j + 1) * g.c_local);
      add_(dx_view, block_->norm1().backward(dxn, x_j, st1));
    }
  }
  return dx_local;
}

}  // namespace fpdt::core
