#include "core/fpdt_block.h"

#include <array>
#include <deque>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/chunk_prefetcher.h"
#include "nn/attention.h"

namespace fpdt::core {

namespace {

using nn::AttentionOutput;
using nn::NormStats;
using nn::OnlineAttnState;
using runtime::Allocation;
using runtime::Buffer;
using runtime::Device;
using runtime::Event;

// Activations are accounted in the paper's training dtype.
constexpr std::int64_t kActBytes = runtime::dtype_size(runtime::Dtype::kBF16);

// Collects tensor handles (shared storage, no copy) from per-rank buffers
// for a collective call.
std::vector<Tensor> tensors_of(const std::vector<Buffer>& buffers) {
  std::vector<Tensor> out;
  out.reserve(buffers.size());
  for (const Buffer& b : buffers) out.push_back(b.tensor());
  return out;
}

// Timing-only span on the device's compute stream (streams mode). Compute
// runs eagerly on the calling thread either way; the span gives transfers
// something to hide behind in the virtual timeline, and its event carries
// the double-buffer window dependency.
Event compute_span(bool streams, Device& dev, std::string label, double duration_s,
                   std::vector<Event> waits = {}) {
  if (!streams) return Event();
  return dev.compute_stream().enqueue(std::move(label), duration_s, std::move(waits));
}

// FLOPs of one attention chunk pair (QKᵀ + PV), from the q̂ shape
// [c_global, h_local, dh] and the number of key rows.
double attn_pair_flops(const Tensor& q, std::int64_t k_rows) {
  return 4.0 * static_cast<double>(q.dim(0)) * static_cast<double>(k_rows) *
         static_cast<double>(q.dim(1)) * static_cast<double>(q.dim(2));
}

double ffn_fwd_flops(const nn::FeedForward& ffn, std::int64_t c_local, std::int64_t d) {
  const double mats = ffn.arch() == nn::Arch::kLlama ? 3.0 : 2.0;
  return 2.0 * static_cast<double>(c_local) * static_cast<double>(d) *
         static_cast<double>(ffn.hidden()) * mats;
}

std::string span_name(const char* kind, std::int64_t i) {
  return std::string(kind) + "." + std::to_string(i);
}
std::string span_name(const char* kind, std::int64_t i, std::int64_t j) {
  return std::string(kind) + "." + std::to_string(i) + "." + std::to_string(j);
}

}  // namespace

FpdtBlockExecutor::FpdtBlockExecutor(nn::TransformerBlock& block, std::int64_t layer_index,
                                     FpdtEnv& env)
    : block_(&block), layer_(layer_index), env_(&env) {}

FpdtBlockExecutor::Geometry FpdtBlockExecutor::geometry(
    const std::vector<Tensor>& x_local) const {
  const int P = env_->world();
  FPDT_CHECK_EQ(static_cast<int>(x_local.size()), P) << " rank count";
  Geometry g;
  g.u = env_->cfg().chunks_per_rank;
  g.s_local = x_local[0].dim(0);
  g.d_model = x_local[0].dim(1);
  FPDT_CHECK_EQ(g.s_local % g.u, 0) << " s_local " << g.s_local << " not divisible into " << g.u
                                    << " chunks";
  g.c_local = g.s_local / g.u;
  g.c_global = g.c_local * P;
  return g;
}

std::int64_t FpdtBlockExecutor::local_pos0(int rank, std::int64_t chunk,
                                           std::int64_t c_local) const {
  // Rank-ordinal layout: local chunk i on rank r is global chunk i*P + r.
  return (chunk * env_->world() + rank) * c_local;
}

std::vector<Tensor> FpdtBlockExecutor::forward(const std::vector<Tensor>& x_local) {
  if (!env_->cfg().cache_forward_outputs) return run_forward(x_local, nullptr);
  // Cache the chunk tensors the backward pass needs, straight from the real
  // forward pass (the paper's scheme: backward then needs no attention
  // recompute and no extra All2All).
  pending_stores_.clear();
  pending_stores_.reserve(static_cast<std::size_t>(env_->world()));
  for (int r = 0; r < env_->world(); ++r) {
    pending_stores_.emplace_back(env_->device(r), env_->host(), env_->cfg().offload);
  }
  return run_forward(x_local, &pending_stores_);
}

std::int64_t FpdtBlockExecutor::cached_host_bytes() const {
  return env_->host().pool().used();
}

std::vector<Tensor> FpdtBlockExecutor::run_forward(const std::vector<Tensor>& x_local,
                                                   std::vector<ChunkStore>* stores) {
  const Geometry g = geometry(x_local);
  const int P = env_->world();
  const bool caching = stores != nullptr;

  // Transient stores for the forward-only path (k̂/v̂ of earlier chunks must
  // live somewhere even when nothing is kept for backward).
  std::vector<ChunkStore> transient;
  std::vector<ChunkStore>* kv_stores = stores;
  if (!caching) {
    transient.reserve(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      transient.emplace_back(env_->device(r), env_->host(), env_->cfg().offload);
    }
    kv_stores = &transient;
  }

  // One prefetcher per rank, driving that rank's H2D/D2H streams. Declared
  // after the stores: its destructor drains in-flight migrations while the
  // stores are still alive.
  std::deque<ChunkPrefetcher> prefetchers;
  for (int r = 0; r < P; ++r) {
    prefetchers.emplace_back((*kv_stores)[static_cast<std::size_t>(r)],
                             env_->cfg().stream_prefetch);
  }
  const bool streams = prefetchers.front().use_streams();

  std::vector<Tensor> z_local;
  z_local.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) z_local.push_back(Tensor::zeros(x_local[0].shape()));

  for (std::int64_t i = 0; i < g.u; ++i) {
    // ---- QKV projection on each rank's local chunk (Fig. 4). -------------
    std::vector<Buffer> qhat(static_cast<std::size_t>(P)), khat(static_cast<std::size_t>(P)),
        vhat(static_cast<std::size_t>(P));
    std::int64_t qkv_numel = 0;  // per-rank q+k+v elements (symmetric)
    {
      std::vector<Buffer> q_loc(static_cast<std::size_t>(P)), k_loc(static_cast<std::size_t>(P)),
          v_loc(static_cast<std::size_t>(P));
      for (int r = 0; r < P; ++r) {
        Device& dev = env_->device(r);
        dev.hbm().set_phase_label("attn.qkv_proj");
        Tensor x_i = x_local[static_cast<std::size_t>(r)].slice0(i * g.c_local,
                                                                 (i + 1) * g.c_local);
        Allocation x_charge(&dev.hbm(), x_i.numel() * kActBytes);  // fetched hidden chunk
        NormStats st1;
        Tensor xn = block_->norm1().forward(x_i, st1);
        Allocation xn_charge(&dev.hbm(), xn.numel() * kActBytes);
        nn::AttentionLayer::Qkv qkv =
            block_->attention().project_qkv(xn, local_pos0(r, i, g.c_local));
        qkv_numel = qkv.q.numel() + qkv.k.numel() + qkv.v.numel();
        compute_span(streams, dev, span_name("proj", i),
                     dev.rates().gemm_time(2.0 * static_cast<double>(g.d_model) *
                                           static_cast<double>(qkv_numel)));
        q_loc[static_cast<std::size_t>(r)] = dev.alloc(std::move(qkv.q));
        k_loc[static_cast<std::size_t>(r)] = dev.alloc(std::move(qkv.k));
        v_loc[static_cast<std::size_t>(r)] = dev.alloc(std::move(qkv.v));
      }
      // ---- Chunked All2All: scatter heads, gather sequence. --------------
      // Not in-place: send buffers (q/k/v_loc) and receive buffers coexist,
      // but both are chunk-sized — the Table-2 "6Nd" spike shrinks by u.
      std::vector<Tensor> qh = env_->pg().all_to_all_heads_to_seq(tensors_of(q_loc));
      std::vector<Tensor> kh = env_->pg().all_to_all_heads_to_seq(tensors_of(k_loc));
      std::vector<Tensor> vh = env_->pg().all_to_all_heads_to_seq(tensors_of(v_loc));
      for (int r = 0; r < P; ++r) {
        Device& dev = env_->device(r);
        dev.hbm().set_phase_label("attn.all2all_recv");
        // The collective blocks the compute queue (the runtime models no
        // separate comm stream).
        compute_span(streams, dev, span_name("a2a", i),
                     dev.rates().a2a_time(qkv_numel * kActBytes, P));
        qhat[static_cast<std::size_t>(r)] = dev.alloc(std::move(qh[static_cast<std::size_t>(r)]));
        khat[static_cast<std::size_t>(r)] = dev.alloc(std::move(kh[static_cast<std::size_t>(r)]));
        vhat[static_cast<std::size_t>(r)] = dev.alloc(std::move(vh[static_cast<std::size_t>(r)]));
      }
    }

    // ---- Online attention of q̂ᵢ against k̂₀..k̂ᵢ (Fig. 5). -----------------
    // Rank-local work between collectives: forked across threads (per-rank
    // buffers are disjoint; the shared host pool is thread-safe).
    std::vector<Buffer> ohat(static_cast<std::size_t>(P)), lse(static_cast<std::size_t>(P));
    std::vector<Event> attn_done(static_cast<std::size_t>(P));
    parallel_for_ranks(P, [&](int r) {
      Device& dev = env_->device(r);
      dev.hbm().set_phase_label("attn.online");
      ChunkPrefetcher& pf = prefetchers[static_cast<std::size_t>(r)];
      const Tensor& q = qhat[static_cast<std::size_t>(r)].tensor();
      OnlineAttnState state = OnlineAttnState::create(q.dim(0), q.dim(1), q.dim(2));
      Allocation state_charge(
          &dev.hbm(), (state.acc.numel() + state.m.numel() + state.l.numel()) * kActBytes);
      // Earlier KV chunks migrate through the prefetcher: the pair for j+1
      // is issued on the H2D stream before chunk j computes (double_buffer),
      // or after it (strict), so one or two pairs are in HBM at a time —
      // exactly the inline path's residency, with the in-flight pair sitting
      // in the pool's staging counter instead of a second data charge.
      Buffer k_cur, v_cur;
      std::vector<Event> attn_evs;
      for (std::int64_t j = 0; j < i; ++j) {
        if (j == 0) {
          pf.prefetch(chunk_key("khat", layer_, 0));
          pf.prefetch(chunk_key("vhat", layer_, 0));
        }
        ChunkPrefetcher::Fetched kf = pf.acquire(chunk_key("khat", layer_, j));
        ChunkPrefetcher::Fetched vf = pf.acquire(chunk_key("vhat", layer_, j));
        k_cur = std::move(kf.buffer);
        v_cur = std::move(vf.buffer);
        if (env_->cfg().double_buffer && j + 1 < i) {
          // Prefetch of chunk j+1 overlaps the compute on chunk j. Window
          // dependency (mirrors sim/timeline.cpp): its target buffer frees
          // when the attention step on chunk j-1 retires.
          std::vector<Event> window;
          if (j >= 1) window.push_back(attn_evs[static_cast<std::size_t>(j - 1)]);
          pf.prefetch(chunk_key("khat", layer_, j + 1), /*take=*/false, window);
          pf.prefetch(chunk_key("vhat", layer_, j + 1), /*take=*/false, window);
        }
        Event ev = compute_span(
            streams, dev, span_name("attn", i, j),
            dev.rates().attn_time(attn_pair_flops(q, g.c_global)), {kf.ready, vf.ready});
        nn::online_attn_step(state, q, k_cur.tensor(), v_cur.tensor(), /*causal=*/true,
                             i * g.c_global, j * g.c_global);
        attn_evs.push_back(ev);
        if (!env_->cfg().double_buffer && j + 1 < i) {
          // Strict mode: the next pair is only fetched once chunk j is done.
          pf.prefetch(chunk_key("khat", layer_, j + 1), /*take=*/false, {ev});
          pf.prefetch(chunk_key("vhat", layer_, j + 1), /*take=*/false, {ev});
        }
      }
      // Diagonal chunk: k̂ᵢ/v̂ᵢ are already on device from the All2All; the
      // causal mask halves its work.
      Event diag = compute_span(streams, dev, span_name("attn", i, i),
                                dev.rates().attn_time(0.5 * attn_pair_flops(q, g.c_global)));
      nn::online_attn_step(state, q, khat[static_cast<std::size_t>(r)].tensor(),
                           vhat[static_cast<std::size_t>(r)].tensor(), /*causal=*/true,
                           i * g.c_global, i * g.c_global);
      AttentionOutput out = nn::online_attn_finalize(state);
      ohat[static_cast<std::size_t>(r)] = dev.alloc(std::move(out.out));
      lse[static_cast<std::size_t>(r)] = dev.alloc(std::move(out.lse));
      attn_done[static_cast<std::size_t>(r)] = diag;

      // Cache k̂ᵢ/v̂ᵢ (and, for backward, q̂ᵢ + lse). "We offload q̂ᵢ, k̂ᵢ, v̂ᵢ
      // to the host memory once they are done for forward computation." The
      // offloads retire on the D2H stream once the diagonal step is done.
      pf.put_async(chunk_key("khat", layer_, i),
                   std::move(khat[static_cast<std::size_t>(r)]), {diag});
      pf.put_async(chunk_key("vhat", layer_, i),
                   std::move(vhat[static_cast<std::size_t>(r)]), {diag});
      if (caching) {
        pf.put_async(chunk_key("qhat", layer_, i),
                     std::move(qhat[static_cast<std::size_t>(r)]), {diag});
        pf.put_async(chunk_key("lse", layer_, i),
                     std::move(lse[static_cast<std::size_t>(r)]), {diag});
      }
    });

    // ---- All2All back + output projection + FFN. --------------------------
    std::vector<Tensor> o_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(ohat));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkPrefetcher& pf = prefetchers[static_cast<std::size_t>(r)];
      const std::int64_t o_numel = ohat[static_cast<std::size_t>(r)].tensor().numel();
      Event a2a_back =
          compute_span(streams, dev, span_name("a2a_back", i),
                       dev.rates().a2a_time(o_numel * kActBytes, P),
                       {attn_done[static_cast<std::size_t>(r)]});
      if (caching) {
        pf.put_async(chunk_key("ohat", layer_, i),
                     std::move(ohat[static_cast<std::size_t>(r)]), {a2a_back});
      } else {
        ohat[static_cast<std::size_t>(r)].release();
      }
      dev.hbm().set_phase_label("attn.out_proj");
      Buffer o_buf = dev.alloc(std::move(o_loc[static_cast<std::size_t>(r)]));
      Tensor x_i =
          x_local[static_cast<std::size_t>(r)].slice0(i * g.c_local, (i + 1) * g.c_local);
      Buffer y_buf = dev.alloc(add(x_i, block_->attention().project_out(o_buf.tensor())));
      o_buf.release();

      dev.hbm().set_phase_label("ffn");
      NormStats st2;
      Tensor yn = block_->norm2().forward(y_buf.tensor(), st2);
      Allocation yn_charge(&dev.hbm(), yn.numel() * kActBytes);
      Tensor f =
          block_->ffn().forward(yn, env_->cfg().ffn_chunk_multiplier, &dev.hbm());
      Event post = compute_span(
          streams, dev, span_name("post", i),
          dev.rates().gemm_time(2.0 * static_cast<double>(g.d_model) *
                                static_cast<double>(o_numel)) +
              dev.rates().gemm_time(ffn_fwd_flops(block_->ffn(), g.c_local, g.d_model)));
      z_local[static_cast<std::size_t>(r)]
          .slice0(i * g.c_local, (i + 1) * g.c_local)
          .copy_from(add(y_buf.tensor(), f));
      if (caching) {
        pf.put_async(chunk_key("y", layer_, i), std::move(y_buf), {post});
      }
    }
  }
  return z_local;
}

std::vector<Tensor> FpdtBlockExecutor::backward(const std::vector<Tensor>& dz_local,
                                                const std::vector<Tensor>& x_local) {
  if (env_->cfg().cache_forward_outputs && !pending_stores_.empty()) {
    // Fast path: the real forward already cached q̂/k̂/v̂/ô/lse/y.
    std::vector<ChunkStore> stores = std::move(pending_stores_);
    pending_stores_.clear();
    return backward_phases(dz_local, x_local, stores);
  }
  // Recompute path (plain activation checkpointing): re-run the chunked
  // forward, materialising and offloading the caches chunk-wise.
  std::vector<ChunkStore> stores;
  stores.reserve(static_cast<std::size_t>(env_->world()));
  for (int r = 0; r < env_->world(); ++r) {
    stores.emplace_back(env_->device(r), env_->host(), env_->cfg().offload);
  }
  run_forward(x_local, &stores);
  return backward_phases(dz_local, x_local, stores);
}

std::vector<Tensor> FpdtBlockExecutor::backward_phases(const std::vector<Tensor>& dz_local,
                                                       const std::vector<Tensor>& x_local,
                                                       std::vector<ChunkStore>& stores) {
  const Geometry g = geometry(x_local);
  const int P = env_->world();

  // One prefetcher per rank for both phases. With cfg.double_buffer the
  // backward prefetches the next chunk's consumables one iteration ahead
  // (Fig. 7 double-buffers the backward too) at the cost of one extra
  // resident chunk set; without it every fetch is issued at its point of
  // use (exposed transfer time in the report, inline-identical residency).
  std::deque<ChunkPrefetcher> prefetchers;
  for (int r = 0; r < P; ++r) {
    prefetchers.emplace_back(stores[static_cast<std::size_t>(r)], env_->cfg().stream_prefetch);
  }
  const bool streams = prefetchers.front().use_streams();
  const bool ahead = env_->cfg().double_buffer;

  std::vector<Tensor> dx_local;
  dx_local.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) dx_local.push_back(Tensor::zeros(x_local[0].shape()));

  // ---- Phase A: FFN / norm2 / Wo backward per chunk ("We first calculate
  // the gradients in FFN, then the attention", Fig. 13). Produces the
  // attention-output gradients dôᵢ and softmax row statistics Dᵢ.
  std::vector<Event> phase_a_done(static_cast<std::size_t>(P));
  for (std::int64_t i = 0; i < g.u; ++i) {
    std::vector<Buffer> dy_tot(static_cast<std::size_t>(P));
    std::vector<Buffer> ohat_i(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkPrefetcher& pf = prefetchers[static_cast<std::size_t>(r)];
      dev.hbm().set_phase_label("bwd.ffn");
      Tensor dz_i =
          dz_local[static_cast<std::size_t>(r)].slice0(i * g.c_local, (i + 1) * g.c_local);
      Allocation dz_charge(&dev.hbm(), dz_i.numel() * kActBytes);
      if (ahead && i == 0) {
        pf.prefetch(chunk_key("y", layer_, 0), /*take=*/true);
        pf.prefetch(chunk_key("ohat", layer_, 0), /*take=*/true);
      }
      ChunkPrefetcher::Fetched yf = pf.acquire(chunk_key("y", layer_, i), /*take=*/true);
      ChunkPrefetcher::Fetched of = pf.acquire(chunk_key("ohat", layer_, i), /*take=*/true);
      Buffer y_buf = std::move(yf.buffer);
      ohat_i[static_cast<std::size_t>(r)] = std::move(of.buffer);
      if (ahead && i + 1 < g.u) {
        // Next chunk's y/ô fetch overlaps this chunk's FFN backward.
        pf.prefetch(chunk_key("y", layer_, i + 1), /*take=*/true,
                    {phase_a_done[static_cast<std::size_t>(r)]});
        pf.prefetch(chunk_key("ohat", layer_, i + 1), /*take=*/true,
                    {phase_a_done[static_cast<std::size_t>(r)]});
      }
      compute_span(streams, dev, span_name("bwd.ffn", i),
                   dev.rates().gemm_time(2.0 * ffn_fwd_flops(block_->ffn(), g.c_local,
                                                             g.d_model)),
                   {yf.ready, of.ready});
      NormStats st2;
      Tensor yn = block_->norm2().forward(y_buf.tensor(), st2);
      Allocation yn_charge(&dev.hbm(), yn.numel() * kActBytes);
      Tensor dyn =
          block_->ffn().backward(dz_i, yn, env_->cfg().ffn_chunk_multiplier, &dev.hbm());
      Tensor dy = add(dz_i, block_->norm2().backward(dyn, y_buf.tensor(), st2));
      // Residual path contribution to dx.
      Tensor dx_view =
          dx_local[static_cast<std::size_t>(r)].slice0(i * g.c_local, (i + 1) * g.c_local);
      add_(dx_view, dy);
      dy_tot[static_cast<std::size_t>(r)] = dev.alloc(std::move(dy));
    }
    // Recover the rank-local attention output to backprop Wo, then return
    // its gradient to the global (head-sharded) layout for phase B.
    std::vector<Tensor> o_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(ohat_i));
    std::vector<Buffer> dao(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      dev.hbm().set_phase_label("bwd.out_proj");
      const std::int64_t o_numel = ohat_i[static_cast<std::size_t>(r)].tensor().numel();
      compute_span(streams, dev, span_name("bwd.a2a", i),
                   dev.rates().a2a_time(o_numel * kActBytes, P));
      compute_span(streams, dev, span_name("bwd.out_proj", i),
                   dev.rates().gemm_time(4.0 * static_cast<double>(g.d_model) *
                                         static_cast<double>(o_numel)));
      dao[static_cast<std::size_t>(r)] = dev.alloc(block_->attention().backward_out(
          dy_tot[static_cast<std::size_t>(r)].tensor(), o_loc[static_cast<std::size_t>(r)]));
      dy_tot[static_cast<std::size_t>(r)].release();
    }
    std::vector<Tensor> dohat = env_->pg().all_to_all_heads_to_seq(tensors_of(dao));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkPrefetcher& pf = prefetchers[static_cast<std::size_t>(r)];
      const std::int64_t o_numel = ohat_i[static_cast<std::size_t>(r)].tensor().numel();
      Event back = compute_span(streams, dev, span_name("bwd.a2a_back", i),
                                dev.rates().a2a_time(o_numel * kActBytes, P));
      Tensor D = nn::online_attn_backward_D(ohat_i[static_cast<std::size_t>(r)].tensor(),
                                            dohat[static_cast<std::size_t>(r)]);
      ohat_i[static_cast<std::size_t>(r)].release();
      pf.put_async(chunk_key("dohat", layer_, i),
                   dev.alloc(std::move(dohat[static_cast<std::size_t>(r)])), {back});
      pf.put_async(chunk_key("D", layer_, i), dev.alloc(std::move(D)), {back});
      phase_a_done[static_cast<std::size_t>(r)] = back;
    }
  }

  // ---- Phase B: the nested double-buffered attention backward (Fig. 7).
  // Outer loop over KV chunks j, inner over query chunks i >= j.
  std::vector<Event> step_ev(static_cast<std::size_t>(P));  // last inner attn step
  for (std::int64_t j = 0; j < g.u; ++j) {
    std::vector<Buffer> k_j(static_cast<std::size_t>(P)), v_j(static_cast<std::size_t>(P));
    std::vector<Buffer> dk_j(static_cast<std::size_t>(P)), dv_j(static_cast<std::size_t>(P));
    std::vector<Buffer> dq_final(static_cast<std::size_t>(P));
    std::vector<std::array<Event, 2>> kv_ready(static_cast<std::size_t>(P));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      ChunkPrefetcher& pf = prefetchers[static_cast<std::size_t>(r)];
      dev.hbm().set_phase_label("bwd.attn");
      if (ahead && j == 0) {
        pf.prefetch(chunk_key("khat", layer_, 0), /*take=*/true);
        pf.prefetch(chunk_key("vhat", layer_, 0), /*take=*/true);
      }
      ChunkPrefetcher::Fetched kf = pf.acquire(chunk_key("khat", layer_, j), /*take=*/true);
      ChunkPrefetcher::Fetched vf = pf.acquire(chunk_key("vhat", layer_, j), /*take=*/true);
      k_j[static_cast<std::size_t>(r)] = std::move(kf.buffer);
      v_j[static_cast<std::size_t>(r)] = std::move(vf.buffer);
      kv_ready[static_cast<std::size_t>(r)] = {kf.ready, vf.ready};
      if (ahead && j + 1 < g.u) {
        // The next KV pair streams in while this outer iteration computes.
        pf.prefetch(chunk_key("khat", layer_, j + 1), /*take=*/true,
                    {step_ev[static_cast<std::size_t>(r)]});
        pf.prefetch(chunk_key("vhat", layer_, j + 1), /*take=*/true,
                    {step_ev[static_cast<std::size_t>(r)]});
      }
      dk_j[static_cast<std::size_t>(r)] =
          dev.alloc(Tensor::zeros(k_j[static_cast<std::size_t>(r)].tensor().shape()));
      dv_j[static_cast<std::size_t>(r)] =
          dev.alloc(Tensor::zeros(v_j[static_cast<std::size_t>(r)].tensor().shape()));
    }
    for (std::int64_t i = j; i < g.u; ++i) {
      const bool last_use = (i == j);  // chunk i's q-side data retires at outer j == i
      parallel_for_ranks(P, [&](int r) {
        Device& dev = env_->device(r);
        ChunkPrefetcher& pf = prefetchers[static_cast<std::size_t>(r)];
        ChunkPrefetcher::Fetched qf = pf.acquire(chunk_key("qhat", layer_, i), last_use);
        ChunkPrefetcher::Fetched dof = pf.acquire(chunk_key("dohat", layer_, i), last_use);
        ChunkPrefetcher::Fetched lsef = pf.acquire(chunk_key("lse", layer_, i), last_use);
        ChunkPrefetcher::Fetched Df = pf.acquire(chunk_key("D", layer_, i), last_use);
        Buffer q_i = std::move(qf.buffer);
        Buffer do_i = std::move(dof.buffer);
        Buffer lse_i = std::move(lsef.buffer);
        Buffer D_i = std::move(Df.buffer);
        // dq̂ᵢ accumulates across outer iterations; it lives in the store
        // (host memory when offloading) between visits.
        Buffer dq_i = (j == 0)
                          ? dev.alloc(Tensor::zeros(q_i.tensor().shape()))
                          : pf.acquire(chunk_key("dqhat", layer_, i), /*take=*/true).buffer;
        std::vector<Event> waits = {qf.ready, dof.ready, lsef.ready, Df.ready};
        if (i == j) {
          waits.push_back(kv_ready[static_cast<std::size_t>(r)][0]);
          waits.push_back(kv_ready[static_cast<std::size_t>(r)][1]);
        }
        // ~2.5× the forward pair FLOPs (dQ, dK, dV plus the recomputed P).
        Event ev = compute_span(
            streams, dev, span_name("bwd.attn", i, j),
            dev.rates().attn_time(2.5 * attn_pair_flops(q_i.tensor(), g.c_global)),
            std::move(waits));
        nn::online_attn_backward_step(
            q_i.tensor(), k_j[static_cast<std::size_t>(r)].tensor(),
            v_j[static_cast<std::size_t>(r)].tensor(), do_i.tensor(), lse_i.tensor(),
            D_i.tensor(), /*causal=*/true, i * g.c_global, j * g.c_global, dq_i.tensor(),
            dk_j[static_cast<std::size_t>(r)].tensor(),
            dv_j[static_cast<std::size_t>(r)].tensor());
        if (i == j) {
          // "For dq0, we get its final result after the first inner loop."
          dq_final[static_cast<std::size_t>(r)] = std::move(dq_i);
        } else {
          pf.put_async(chunk_key("dqhat", layer_, i), std::move(dq_i), {ev});
        }
        step_ev[static_cast<std::size_t>(r)] = ev;
      });
    }
    // dk̂ⱼ/dv̂ⱼ are final after the outer iteration; All2All the finals back
    // to their home ranks and run the projection + norm1 backward there.
    std::vector<Tensor> dq_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(dq_final));
    std::vector<Tensor> dk_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(dk_j));
    std::vector<Tensor> dv_loc = env_->pg().all_to_all_seq_to_heads(tensors_of(dv_j));
    for (int r = 0; r < P; ++r) {
      Device& dev = env_->device(r);
      dev.hbm().set_phase_label("bwd.qkv_proj");
      const std::int64_t dqkv_numel =
          dq_final[static_cast<std::size_t>(r)].tensor().numel() +
          dk_j[static_cast<std::size_t>(r)].tensor().numel() +
          dv_j[static_cast<std::size_t>(r)].tensor().numel();
      compute_span(streams, dev, span_name("bwd.a2a_qkv", j),
                   dev.rates().a2a_time(dqkv_numel * kActBytes, P));
      compute_span(streams, dev, span_name("bwd.qkv_proj", j),
                   dev.rates().gemm_time(4.0 * static_cast<double>(g.d_model) *
                                         static_cast<double>(dqkv_numel)));
      dq_final[static_cast<std::size_t>(r)].release();
      dk_j[static_cast<std::size_t>(r)].release();
      dv_j[static_cast<std::size_t>(r)].release();
      k_j[static_cast<std::size_t>(r)].release();
      v_j[static_cast<std::size_t>(r)].release();
      Tensor x_j =
          x_local[static_cast<std::size_t>(r)].slice0(j * g.c_local, (j + 1) * g.c_local);
      NormStats st1;
      Tensor xn = block_->norm1().forward(x_j, st1);
      Tensor dxn = block_->attention().backward_qkv(
          dq_loc[static_cast<std::size_t>(r)], dk_loc[static_cast<std::size_t>(r)],
          dv_loc[static_cast<std::size_t>(r)], xn, local_pos0(r, j, g.c_local));
      Tensor dx_view =
          dx_local[static_cast<std::size_t>(r)].slice0(j * g.c_local, (j + 1) * g.c_local);
      add_(dx_view, block_->norm1().backward(dxn, x_j, st1));
    }
  }
  return dx_local;
}

}  // namespace fpdt::core
