// Shared execution environment for an FPDT run: the sequence-parallel
// process group, one emulated device per rank, and the node's host memory.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "comm/hierarchical_group.h"
#include "comm/process_group.h"
#include "common/logging.h"
#include "core/fpdt_config.h"
#include "fault/fault_injector.h"
#include "kernels/backend.h"
#include "runtime/device.h"
#include "sim/hardware.h"
#include "topo/topology.h"

namespace fpdt::core {

class FpdtEnv {
 public:
  // hbm_capacity_bytes < 0 = unlimited (functional tests); finite values
  // make OOM observable (capacity experiments).
  FpdtEnv(int world, FpdtConfig cfg, std::int64_t hbm_capacity_bytes = -1,
          std::int64_t host_capacity_bytes = -1)
      : pg_(make_group(world, cfg)),
        host_(host_capacity_bytes),
        cfg_(cfg),
        kernel_scope_(std::getenv("FPDT_KERNEL_BACKEND") != nullptr ? std::string()
                                                                    : cfg_.kernel_backend) {
    // ^ cfg.kernel_backend selects the math-kernel backend for this env's
    // lifetime; like FPDT_FAULTS, the FPDT_KERNEL_BACKEND env var wins over
    // per-env config (it already decided the process default at startup).
    init_logging_from_env();  // honor FPDT_LOG_LEVEL for everything downstream
    devices_.reserve(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) {
      devices_.push_back(std::make_unique<runtime::Device>(r, hbm_capacity_bytes));
    }
    // Arm the injector from the config unless something upstream (CLI flag,
    // FPDT_FAULTS) already did — the process-wide spec wins over per-env.
    if (!cfg_.fault_spec.empty() && !fault::FaultInjector::instance().enabled()) {
      fault::FaultInjector::instance().configure(cfg_.fault_spec);
    }
    // Route retry backoffs into this env's stream ledgers so they show up
    // in `fpdt overlap`/traces. Owner-tagged: a newer env (built during an
    // OOM-degradation rebuild) steals the sink; the older env's clear is
    // then a no-op.
    fault::FaultInjector::instance().set_backoff_sink(
        this, [this](int rank, const std::string& label, double seconds) {
          charge_backoff(rank, label, seconds);
        });
  }

  ~FpdtEnv() { fault::FaultInjector::instance().clear_backoff_sink(this); }

  FpdtEnv(const FpdtEnv&) = delete;  // the backoff sink captures `this`
  FpdtEnv& operator=(const FpdtEnv&) = delete;
  FpdtEnv(FpdtEnv&&) = delete;
  FpdtEnv& operator=(FpdtEnv&&) = delete;

  int world() const { return pg_->world_size(); }
  comm::ProcessGroup& pg() { return *pg_; }
  runtime::Device& device(int r) { return *devices_[static_cast<std::size_t>(r)]; }
  runtime::Host& host() { return host_; }
  const FpdtConfig& cfg() const { return cfg_; }

  // Largest HBM peak across the group (the number Fig. 12 reports).
  std::int64_t max_hbm_peak() const {
    std::int64_t peak = 0;
    for (const auto& d : devices_) peak = std::max(peak, d->hbm().peak());
    return peak;
  }

  void reset_peaks() {
    for (const auto& d : devices_) d->hbm().reset_peak();
  }

  // ---- Stream timeline helpers (cfg.stream_prefetch) ----

  void set_stream_rates(const runtime::StreamRates& rates) {
    for (const auto& d : devices_) d->set_rates(rates);
  }

  // Transfer-timeline report of one rank (they are symmetric; rank 0 is
  // what the CLI prints). Synchronizes that device's streams.
  runtime::TimelineReport timeline_report(int rank = 0) {
    return device(rank).timeline_report();
  }

  void reset_stream_timelines() {
    for (const auto& d : devices_) d->reset_stream_timelines();
  }

  void synchronize_streams() {
    for (const auto& d : devices_) d->synchronize_streams();
  }

  // Charges a retry backoff as a timing-only span on the stream the retried
  // operation would have used: collective retries (rank < 0) stall every
  // rank's compute stream; transfer retries land on the acting rank's
  // h2d/d2h stream (picked from the label the retry loop built).
  void charge_backoff(int rank, const std::string& label, double seconds) {
    if (rank < 0) {
      for (const auto& d : devices_) d->compute_stream().enqueue(label, seconds);
      return;
    }
    if (rank >= world()) return;  // stale sink call from a smaller old env
    runtime::Device& d = device(rank);
    runtime::Stream& s =
        label.rfind("retry.offload", 0) == 0 ? d.d2h_stream() : d.h2d_stream();
    s.enqueue(label, seconds);
  }

 private:
  // cfg.ranks_per_node carving the world into >1 full nodes selects the
  // topology-aware group; anything else (0, non-dividing, single node)
  // keeps the seed's flat fabric. Collectives are payload-bitwise-identical
  // either way, so this is a routing/accounting choice, never a numerics
  // one.
  static std::unique_ptr<comm::ProcessGroup> make_group(int world, const FpdtConfig& cfg) {
    const int rpn = cfg.ranks_per_node;
    if (rpn > 0 && world > rpn && world % rpn == 0) {
      return std::make_unique<comm::HierarchicalProcessGroup>(
          topo::Topology::grid(world / rpn, rpn, sim::a100_80g_node()));
    }
    return std::unique_ptr<comm::ProcessGroup>(new comm::ProcessGroup(world));
  }

  std::unique_ptr<comm::ProcessGroup> pg_;
  std::vector<std::unique_ptr<runtime::Device>> devices_;
  runtime::Host host_;
  FpdtConfig cfg_;
  kernels::BackendScope kernel_scope_;
};

}  // namespace fpdt::core
