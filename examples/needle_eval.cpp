// Long-context capability probe — the paper's motivating effect, end to end:
// a model must be TRAINED on the target context length to use it (RoPE
// rescaling tricks "struggle in properly adapting models to longer context",
// §1), and FPDT is what makes that training affordable.
//
// We train two identical models on needle-recall episodes:
//   short-context model: episodes of 8..24 tokens (cheap, short attention)
//   long-context model:  episodes of 8..96 tokens, trained through the
//                        chunked/offloaded FPDT pipeline
// and probe recall accuracy across distances. The short model collapses
// beyond its training length; the FPDT-trained model holds.
//
//   ./examples/needle_eval [steps]   (default 1200; ~5 min of CPU training)
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/fpdt_trainer.h"
#include "data/needle.h"
#include "nn/adam.h"
#include "nn/generate.h"
#include "nn/model.h"

namespace {

using namespace fpdt;

double accuracy_at(nn::Model& model, std::int64_t distance, std::int64_t vocab) {
  data::NeedleGenerator probe(vocab, 1234);
  int correct = 0;
  const int probes = 48;
  for (int p = 0; p < probes; ++p) {
    const data::NeedleSample s = probe.sample(distance);
    Tensor logits = nn::next_token_logits(model, s.tokens);
    std::int64_t best = 0;
    for (std::int64_t v = 1; v < logits.numel(); ++v) {
      if (logits.data()[v] > logits.data()[best]) best = v;
    }
    correct += (best == s.answer);
  }
  return static_cast<double>(correct) / probes;
}

// Trims a variable-length episode stream so s_global divides world * chunks.
std::vector<std::int32_t> trim_for(const std::vector<std::int32_t>& tokens,
                                   std::int64_t multiple) {
  const std::int64_t usable =
      (static_cast<std::int64_t>(tokens.size()) - 1) / multiple * multiple;
  return {tokens.begin(), tokens.begin() + usable + 1};
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 1200;
  const nn::ModelConfig cfg = nn::tiny_gpt(64, 2, 4, 32);

  // ---- Short-context training (single device, episodes <= 24).
  nn::Model short_model(cfg, 77);
  {
    nn::Adam opt(3e-3);
    data::NeedleGenerator gen(cfg.vocab, 5);
    for (int step = 0; step < steps; ++step) {
      short_model.train_step_grads(gen.training_sequence(8, 24, 4));
      opt.step([&](const nn::ParamVisitor& f) { short_model.visit_params(f); });
    }
  }

  // ---- Long-context training through FPDT (episodes up to 96).
  nn::Model long_model(cfg, 77);
  {
    core::FpdtConfig fcfg;
    fcfg.chunks_per_rank = 2;
    core::FpdtTrainer trainer(long_model, /*world=*/4, fcfg);
    nn::Adam opt(3e-3);
    data::NeedleGenerator gen(cfg.vocab, 5);
    const std::int64_t multiple = 4 * fcfg.chunks_per_rank;
    for (int step = 0; step < steps; ++step) {
      // Eight episodes per sequence keep the recall supervision dense even
      // though episodes are long.
      const auto tokens = trim_for(gen.training_sequence(8, 96, 8), multiple);
      trainer.train_step_grads(tokens);
      opt.step([&](const nn::ParamVisitor& f) { long_model.visit_params(f); });
      if (step % 100 == 0) std::printf("  fpdt long-context training step %d\n", step);
    }
  }

  std::cout << "\nRecall accuracy vs needle distance (chance "
            << cell_pct(1.0 / 7.0) << "):\n";
  TextTable table({"distance", "short-ctx model (<=24)", "fpdt long-ctx model (<=96)"});
  bool story_holds = true;
  for (std::int64_t d : {12, 24, 48, 72, 96}) {
    const double a_short = accuracy_at(short_model, d, cfg.vocab);
    const double a_long = accuracy_at(long_model, d, cfg.vocab);
    table.add_row({std::to_string(d), cell_pct(a_short), cell_pct(a_long)});
    if (d >= 48 && a_long < a_short) story_holds = false;
  }
  table.print(std::cout);
  table.write_csv("needle_eval.csv");
  std::cout << "\nThe short-context model collapses beyond its training length; the\n"
               "FPDT-trained model keeps retrieving across the full long context —\n"
               "the reason to train at the target length (and the reason FPDT exists).\n";
  return story_holds ? 0 : 1;
}
