// Pipeline trace: visualise the simulated FPDT chunk schedule — the
// double-buffered, multi-stream execution of Figs. 5 and 7 — and its
// per-engine utilisation, for any model/chunk configuration.
//
//   ./examples/pipeline_trace llama-8b 4 64K
//   (args: model gpus chunk-size; defaults: llama-8b 4 64K)
#include <iostream>
#include <string>

#include "common/units.h"
#include "nn/model_config.h"
#include "sim/cost_model.h"
#include "sim/pipeline_sim.h"
#include "sim/timeline.h"

int main(int argc, char** argv) {
  using namespace fpdt;
  const std::string model_name = argc > 1 ? argv[1] : "llama-8b";
  const int world = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t chunk = argc > 3 ? parse_token_count(argv[3]) : 64 * 1024;

  const nn::ModelConfig cfg = nn::model_by_name(model_name);
  const sim::CostModel cm(sim::a100_80g_node(), world);
  const std::int64_t s_global = 4 * chunk;  // 4 chunks for a readable trace
  const std::int64_t s_local = s_global / world;
  const std::int64_t u = s_global / chunk;

  std::cout << "FPDT pipeline: " << cfg.name << ", " << world << " GPUs, "
            << format_token_count(s_global) << " sequence, " << u << " chunks of "
            << format_token_count(chunk) << "\n\n";

  for (const bool dbuf : {false, true}) {
    const sim::LayerTiming t =
        sim::fpdt_layer_timing(cfg, cm, s_local, u, /*offload=*/true, dbuf);
    std::cout << (dbuf ? "double buffer" : "single buffer ") << ": fwd "
              << format_seconds(t.forward_s) << ", bwd " << format_seconds(t.backward_s)
              << "  | busy  comp " << format_seconds(t.compute_busy_s) << "  h2d "
              << format_seconds(t.h2d_busy_s) << "  d2h " << format_seconds(t.d2h_busy_s)
              << "  comm " << format_seconds(t.comm_busy_s) << "\n";
  }

  const sim::LayerTiming ul = sim::ulysses_layer_timing(cfg, cm, s_local);
  std::cout << "ulysses (1 chunk): fwd " << format_seconds(ul.forward_s) << ", bwd "
            << format_seconds(ul.backward_s) << "\n\n";

  // Raw task-level trace of the forward chunk pipeline.
  std::cout << "Forward task trace (per-chunk: proj -> All2All -> online attention over\n"
               "cached KV chunks -> All2All back -> out-proj+FFN; offloads on the D2H\n"
               "stream, prefetches on H2D):\n\n";
  std::cout << sim::fpdt_forward_trace(cfg, cm, s_local, u, /*offload=*/true,
                                       /*double_buffer=*/true, 48);
  return 0;
}
