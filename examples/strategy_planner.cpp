// Strategy planner: the tool a practitioner would actually reach for.
// Given a model and a GPU budget, compare every training strategy the
// paper evaluates — maximum trainable context, per-GPU memory breakdown,
// host-memory needs, simulated step time and MFU — and print a
// recommendation.
//
//   ./examples/strategy_planner llama-8b 8 80
//   ./examples/strategy_planner gpt-30b 16 80
//   (args: model-name gpu-count hbm-GiB; defaults: llama-8b 8 80)
#include <iostream>
#include <string>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "perfmodel/evaluate.h"

int main(int argc, char** argv) {
  using namespace fpdt;
  const std::string model_name = argc > 1 ? argv[1] : "llama-8b";
  const int world = argc > 2 ? std::atoi(argv[2]) : 8;
  const int hbm_gib = argc > 3 ? std::atoi(argv[3]) : 80;

  const nn::ModelConfig cfg = nn::model_by_name(model_name);
  sim::HardwareSpec hw = hbm_gib <= 40 ? sim::a100_40g_node() : sim::a100_80g_node();

  std::cout << "Model " << cfg.name << " (" << cfg.param_count() / 1000000000.0
            << "B params), " << world << "x A100-" << hbm_gib << "G\n\n";

  const perfmodel::Strategy strategies[] = {
      perfmodel::Strategy::megatron_tp(true, true),
      perfmodel::Strategy::megatron_sp(),
      perfmodel::Strategy::ulysses(3, true, true),
      perfmodel::Strategy::fpdt_chunking_only(),
      perfmodel::Strategy::fpdt(),
  };

  TextTable table({"strategy", "max_ctx", "hbm_used", "host_used", "step", "mfu"});
  std::int64_t best_len = 0;
  std::string best;
  double best_mfu = 0.0;
  for (const perfmodel::Strategy& st : strategies) {
    const std::int64_t max_len = perfmodel::max_sequence(cfg, st, world, hw);
    if (max_len == 0) {
      table.add_row({st.label(), "OOM", "-", "-", "-", "-"});
      continue;
    }
    const perfmodel::Evaluation ev = perfmodel::evaluate(cfg, st, world, max_len, hw);
    table.add_row({st.label(), format_token_count(max_len),
                   format_bytes(ev.memory.device_total()), format_bytes(ev.memory.host_bytes),
                   format_seconds(ev.step_s), cell_pct(ev.mfu)});
    if (max_len > best_len || (max_len == best_len && ev.mfu > best_mfu)) {
      best_len = max_len;
      best_mfu = ev.mfu;
      best = st.label();
    }
  }
  table.print(std::cout);

  if (best_len == 0) {
    std::cout << "\nNo strategy fits this model on " << world
              << " GPUs — add GPUs or shrink the model.\n";
    return 1;
  }
  std::cout << "\nRecommendation: " << best << " -> up to " << format_token_count(best_len)
            << " context at " << cell_pct(best_mfu) << " MFU.\n";

  // Memory breakdown of the recommended configuration.
  const perfmodel::Evaluation ev =
      perfmodel::evaluate(cfg, perfmodel::Strategy::fpdt(), world, best_len, hw);
  std::cout << "\nFPDT per-GPU memory at " << format_token_count(best_len) << ":\n"
            << "  params             " << format_bytes(ev.memory.params) << "\n"
            << "  gradients          " << format_bytes(ev.memory.grads) << "\n"
            << "  optimizer states   " << format_bytes(ev.memory.optimizer) << "\n"
            << "  ZeRO-3 gather      " << format_bytes(ev.memory.gathered_params) << "\n"
            << "  activations        " << format_bytes(ev.memory.stored_activations) << "\n"
            << "  chunk working set  " << format_bytes(ev.memory.working_set) << "\n"
            << "  loss-head spike    " << format_bytes(ev.memory.logits_spike) << "\n"
            << "  host (offloaded)   " << format_bytes(ev.memory.host_bytes)
            << (ev.recompute_fallback ? "  [recompute fallback: host-bound]" : "") << "\n";
  return 0;
}
