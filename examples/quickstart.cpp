// Quickstart: train a small GPT with FPDT on an emulated 4-GPU
// sequence-parallel group, and watch the loss fall while the chunked,
// offloaded executor keeps the per-GPU working set flat.
//
//   ./examples/quickstart
//
// This exercises the whole public API surface: ModelConfig -> Model ->
// FpdtTrainer (rank-ordinal sharding, chunked attention with offload,
// chunked FFN and loss head) -> Adam.
#include <iostream>

#include "common/units.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/model.h"

int main() {
  using namespace fpdt;

  // 1. Describe a model. tiny_gpt keeps the demo fast; swap in
  //    nn::llama_8b() etc. for the paper-scale *analytic* tools (see
  //    examples/strategy_planner.cpp — the functional trainer is exact but
  //    runs on CPU, so keep it small here).
  const nn::ModelConfig cfg = nn::tiny_gpt(/*d_model=*/64, /*n_layer=*/2, /*n_head=*/4,
                                           /*vocab=*/96);
  nn::Model model(cfg, /*seed=*/1234);

  // 2. Wrap it in an FPDT trainer: 4 emulated GPUs, 4 sequence chunks per
  //    rank, host offloading with double buffering (the paper's default).
  core::FpdtConfig fpdt_cfg;
  fpdt_cfg.chunks_per_rank = 4;
  fpdt_cfg.offload = true;
  fpdt_cfg.double_buffer = true;
  core::FpdtTrainer trainer(model, /*world=*/4, fpdt_cfg);

  // 3. Train on a synthetic corpus.
  nn::Adam optimizer(2e-3);
  data::SyntheticCorpus corpus(cfg.vocab, /*seed=*/7);
  const std::int64_t seq_len = 512;  // divisible by world * chunks_per_rank

  std::cout << "step  loss    hbm_peak(rank0)  h2d_traffic  d2h_traffic\n";
  for (int step = 1; step <= 20; ++step) {
    const std::vector<std::int32_t> tokens = corpus.sample(seq_len + 1);
    const double loss = trainer.train_step_grads(tokens);
    optimizer.step([&](const nn::ParamVisitor& fn) { model.visit_params(fn); });
    const auto& dev = trainer.env().device(0);
    std::printf("%4d  %.4f  %15s  %11s  %11s\n", step, loss,
                format_bytes(dev.hbm().peak()).c_str(),
                format_bytes(dev.transfers().h2d_bytes).c_str(),
                format_bytes(dev.transfers().d2h_bytes).c_str());
  }
  std::cout << "\nThe HBM peak stays flat step over step: only O(chunk) buffers ever\n"
               "live on the device; the cached sequence chunks live in host memory.\n";
  return 0;
}
