// End-to-end lifecycle demo: pretrain a small GPT with FPDT (cosine LR
// schedule, gradient clipping), checkpoint it, reload into a fresh model,
// and generate continuations — the full loop a downstream user runs.
//
//   ./examples/train_and_generate [steps]   (default 80)
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "common/units.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/checkpoint_io.h"
#include "nn/generate.h"
#include "nn/inference.h"
#include "nn/model.h"
#include "nn/training.h"

int main(int argc, char** argv) {
  using namespace fpdt;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 80;

  const nn::ModelConfig cfg = nn::tiny_gpt(64, 2, 4, 64);
  nn::Model model(cfg, 2024);
  core::FpdtConfig fpdt_cfg;
  fpdt_cfg.chunks_per_rank = 4;
  core::FpdtTrainer trainer(model, /*world=*/4, fpdt_cfg);

  nn::Adam opt(1e-3);
  nn::CosineLrSchedule schedule(3e-3, 3e-4, /*warmup=*/10, steps);
  data::SyntheticCorpus corpus(cfg.vocab, 123);
  nn::ThroughputMeter meter;

  std::cout << "Training " << cfg.param_count() << "-param GPT with FPDT on 4 emulated GPUs\n";
  for (int step = 0; step < steps; ++step) {
    opt.set_lr(schedule.lr_at(step));
    const auto tokens = corpus.sample(513);
    const double loss = trainer.train_step_grads(tokens);
    const double gnorm =
        nn::clip_grad_norm([&](const nn::ParamVisitor& f) { model.visit_params(f); }, 1.0);
    opt.step([&](const nn::ParamVisitor& f) { model.visit_params(f); });
    meter.step(512);
    if (step % 10 == 0 || step == steps - 1) {
      std::printf("step %3d  lr %.2e  loss %.4f  grad_norm %.2f\n", step, opt.lr(), loss,
                  gnorm);
    }
  }
  std::cout << "throughput (emulated-functional): "
            << static_cast<std::int64_t>(meter.tokens_per_second()) << " tokens/s\n\n";

  // Checkpoint, reload into a fresh model, verify, generate.
  const std::string path =
      (std::filesystem::temp_directory_path() / "fpdt_demo.ckpt").string();
  nn::save_checkpoint(model, path);
  nn::Model restored(cfg, 1);
  nn::load_checkpoint(restored, path);
  const auto probe = corpus.sample(65);
  std::cout << "checkpoint round-trip: " << std::filesystem::file_size(path)
            << " bytes, eval losses "
            << (model.eval_loss(probe) == restored.eval_loss(probe) ? "identical"
                                                                    : "DIFFER (bug!)")
            << "\n";

  nn::SampleOptions greedy;
  greedy.temperature = 0.0;
  Rng rng(7);
  const auto prompt = corpus.sample(32);
  // KV-cache generation with chunked prefill — the inference analogue of
  // the training-side chunk pipeline (and O(n) per decoded token).
  const auto continued =
      nn::generate_cached(restored, prompt, 16, greedy, rng, /*prefill_chunk=*/8);
  std::cout << "prompt tail: ";
  for (std::size_t i = prompt.size() - 8; i < prompt.size(); ++i) {
    std::cout << prompt[i] << " ";
  }
  std::cout << "\ngenerated  : ";
  for (std::size_t i = prompt.size(); i < continued.size(); ++i) {
    std::cout << continued[i] << " ";
  }
  std::cout << "\n";
  std::remove(path.c_str());
  return 0;
}
