// Long-context pretraining demo: the scenario the paper's introduction
// motivates — push the context length far beyond what an unchunked run
// could hold, on a *memory-capped* emulated device, and show that
// (a) the Ulysses-style monolithic executor OOMs while FPDT trains, and
// (b) FPDT's loss still falls (it computes exactly the same gradients).
//
//   ./examples/long_context_pretrain [seq_len] [steps]
//   defaults: 2048 tokens, 8 steps (CPU-friendly tiny model)
#include <iostream>

#include "common/units.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/model.h"

int main(int argc, char** argv) {
  using namespace fpdt;
  const std::int64_t seq_len = argc > 1 ? std::atoll(argv[1]) : 2048;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 8;
  const int world = 4;

  const nn::ModelConfig cfg = nn::tiny_gpt(64, 2, 4, 96);
  data::SyntheticCorpus corpus(cfg.vocab, 11);

  // A deliberately tight HBM budget: the full-sequence working set of the
  // monolithic (Ulysses, 1-chunk) executor does not fit, the chunked one
  // does. Scaled-down version of the paper's Fig. 11 OOM walls.
  const std::int64_t hbm_cap = seq_len * cfg.d_model * 2 * 3;

  std::cout << "sequence " << format_token_count(seq_len) << ", HBM cap/GPU "
            << format_bytes(hbm_cap) << "\n\n";

  // ---- Attempt 1: no chunking (Ulysses-style execution).
  {
    nn::Model model(cfg, 99);
    core::FpdtConfig mono;
    mono.chunks_per_rank = 1;
    mono.offload = false;
    mono.cache_forward_outputs = false;
    core::FpdtTrainer trainer(model, world, mono, hbm_cap);
    try {
      trainer.train_step_grads(corpus.sample(seq_len + 1));
      std::cout << "[unexpected] monolithic execution fit in the cap\n";
    } catch (const OutOfMemoryError& e) {
      std::cout << "monolithic (no chunking): OOM as expected -> " << e.what() << "\n\n";
    }
  }

  // ---- Attempt 2: FPDT — 8 chunks per rank, offloaded, double-buffered.
  nn::Model model(cfg, 99);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 8;
  fcfg.offload = true;
  core::FpdtTrainer trainer(model, world, fcfg, hbm_cap);
  nn::Adam opt(2e-3);
  std::cout << "FPDT (8 chunks/rank, offload): training...\n";
  double first = 0.0, last = 0.0;
  for (int step = 1; step <= steps; ++step) {
    const double loss = trainer.train_step_grads(corpus.sample(seq_len + 1));
    opt.step([&](const nn::ParamVisitor& fn) { model.visit_params(fn); });
    if (step == 1) first = loss;
    last = loss;
    std::printf("  step %2d  loss %.4f  hbm_peak %s  host %s\n", step, loss,
                format_bytes(trainer.env().device(0).hbm().peak()).c_str(),
                format_bytes(trainer.env().host().pool().peak()).c_str());
  }
  std::cout << "\nloss " << first << " -> " << last
            << " under the same HBM cap that OOMed the monolithic run.\n";
  return last < first ? 0 : 1;
}
